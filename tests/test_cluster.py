"""Tests for the cluster-of-clusters layer and the scenario experiment.

Placement policies and capacity-aware queueing, the dynamic cluster
runtime, bit-identity of serial vs parallel vs cached scenario sweeps,
and the registered ``scenario`` experiment with its CLI flags.
"""

import json

import pytest

from repro.cli import main
from repro.cluster import (
    POLICIES,
    DynamicCluster,
    Placement,
    benchmark_pressure,
    place_scenario,
    run_cluster_scenario,
    run_scenario,
    run_scenario_unit,
)
from repro.cluster.dynamic import cluster_specs, summarize_scenario
from repro.experiments import EXPERIMENTS, ExperimentParams
from repro.workloads.scenario import AppArrival, Scenario, make_scenario


def _scenario(**overrides):
    kwargs = dict(n_apps=12, duration=200, seed=11)
    kwargs.update(overrides)
    return make_scenario("bursty", **kwargs)


class TestScheduler:
    def test_policies_registry(self):
        assert set(POLICIES) == {"round-robin", "least-loaded", "sc-mpki"}

    def test_placement_partitions_arrivals(self):
        scenario = _scenario()
        placement = place_scenario(scenario, n_clusters=3, capacity=8,
                                   policy="least-loaded")
        placed = [a.uid for sub in placement.clusters for a in sub.arrivals]
        assert sorted(placed) == sorted(a.uid for a in scenario.arrivals)
        assert placement.rejected == []

    def test_placement_is_deterministic(self):
        scenario = _scenario()
        for policy in POLICIES:
            a = place_scenario(scenario, n_clusters=3, capacity=8,
                               policy=policy)
            b = place_scenario(scenario, n_clusters=3, capacity=8,
                               policy=policy)
            assert [s.to_dict() for s in a.clusters] == [
                s.to_dict() for s in b.clusters]

    def test_capacity_is_respected_at_every_instant(self):
        scenario = _scenario(n_apps=20)
        placement = place_scenario(scenario, n_clusters=2, capacity=4,
                                   policy="least-loaded")
        for sub in placement.clusters:
            for t in range(scenario.duration):
                assert sub.population(t) <= 4

    def test_full_clusters_queue_arrivals_preserving_service(self):
        arrivals = tuple(
            AppArrival(uid=f"a{i}", benchmark="bzip2", arrive=0,
                       depart=10)
            for i in range(3)
        )
        scenario = Scenario(name="s", shape="steady", duration=40,
                            arrivals=arrivals)
        placement = place_scenario(scenario, n_clusters=1, capacity=2,
                                   policy="least-loaded")
        placed = sorted(placement.clusters[0].arrivals,
                        key=lambda a: a.arrive)
        assert [a.arrive for a in placed[:2]] == [0, 0]
        queued = placed[2]
        assert queued.arrive == 10       # first departure frees a slot
        assert queued.depart == 20       # service length preserved
        assert queued.queued == 10
        assert placement.queued_delays.count(10) == 1

    def test_arrivals_beyond_horizon_are_rejected(self):
        arrivals = tuple(
            AppArrival(uid=f"a{i}", benchmark="bzip2", arrive=0)
            for i in range(3)
        )
        scenario = Scenario(name="s", shape="steady", duration=20,
                            arrivals=arrivals)
        placement = place_scenario(scenario, n_clusters=1, capacity=2,
                                   policy="round-robin")
        assert [a.uid for a in placement.rejected] == ["a2"]

    def test_round_robin_cycles(self):
        arrivals = tuple(
            AppArrival(uid=f"a{i}", benchmark="bzip2", arrive=i)
            for i in range(4)
        )
        scenario = Scenario(name="s", shape="steady", duration=30,
                            arrivals=arrivals)
        placement = place_scenario(scenario, n_clusters=2, capacity=8,
                                   policy="round-robin")
        by_cluster = {
            sub.name.rsplit("/c", 1)[1]: [a.uid for a in sub.arrivals]
            for sub in placement.clusters
        }
        assert by_cluster == {"0": ["a0", "a2"], "1": ["a1", "a3"]}

    def test_sc_mpki_policy_balances_pressure(self):
        # Two HPD-heavy arrivals must not land on the same cluster
        # while an LPD one is the only other resident.
        hpd = "mcf"        # high OoO pressure
        lpd = "povray"     # low OoO pressure
        assert benchmark_pressure(hpd) > benchmark_pressure(lpd)
        arrivals = (
            AppArrival(uid="h0", benchmark=hpd, arrive=0),
            AppArrival(uid="l0", benchmark=lpd, arrive=1),
            AppArrival(uid="h1", benchmark=hpd, arrive=2),
        )
        scenario = Scenario(name="s", shape="steady", duration=30,
                            arrivals=arrivals)
        placement = place_scenario(scenario, n_clusters=2, capacity=8,
                                   policy="sc-mpki")
        homes = {
            a.uid: sub.name
            for sub in placement.clusters for a in sub.arrivals
        }
        assert homes["h0"] != homes["h1"]

    def test_invalid_arguments_rejected(self):
        scenario = _scenario()
        with pytest.raises(ValueError, match="n_clusters"):
            place_scenario(scenario, n_clusters=0, capacity=4,
                           policy="least-loaded")
        with pytest.raises(ValueError, match="capacity"):
            place_scenario(scenario, n_clusters=2, capacity=0,
                           policy="least-loaded")
        with pytest.raises(ValueError, match="policy"):
            place_scenario(scenario, n_clusters=2, capacity=4,
                           policy="random")


class TestDynamicCluster:
    def test_run_produces_per_app_summaries(self):
        scenario = _scenario(n_apps=8)
        result = run_cluster_scenario(scenario, arbitrator="SC-MPKI")
        assert result.intervals == scenario.duration
        assert len(result.apps) == 8
        assert result.arrivals == 8
        uids = {a.uid for a in result.apps}
        assert uids == {a.uid for a in scenario.arrivals}
        for app in result.apps:
            assert 0.0 <= app.progress <= 1.0
            assert app.residency >= 0
        assert len(result.population) == scenario.duration
        assert len(result.throughput) == scenario.duration

    def test_population_series_tracks_schedule(self):
        scenario = _scenario(n_apps=6)
        result = run_cluster_scenario(scenario, arbitrator="SC-MPKI")
        # The series phase runs after the lifecycle phase, so interval
        # k reports the population the schedule says is resident.
        for k in (0, scenario.duration // 2, scenario.duration - 1):
            assert result.population[k] == scenario.population(k)

    def test_rejects_overfull_scenario(self):
        scenario = _scenario(n_apps=8)
        with pytest.raises(ValueError, match="cores"):
            run_cluster_scenario(scenario, n_consumers=3,
                                 arbitrator="SC-MPKI")

    def test_unit_round_trip_is_json_pure(self):
        scenario = _scenario(n_apps=6)
        spec = {"scenario": scenario.to_dict(), "label": "c0",
                "n_consumers": 8}
        out = run_scenario_unit(spec)
        assert out == json.loads(json.dumps(out))
        assert out["label"] == "c0"

    def test_summarize_is_order_stable_pure_data(self):
        scenario = _scenario(n_apps=10)
        placement = place_scenario(scenario, n_clusters=2, capacity=6,
                                   policy="least-loaded")
        specs = cluster_specs(placement, capacity=6)
        results = [run_scenario_unit(s) for s in specs]
        a = summarize_scenario(results, 0, placement.queued_delays)
        b = summarize_scenario(
            json.loads(json.dumps(results)), 0,
            list(placement.queued_delays))
        assert a == b

    def test_run_scenario_serial_equals_jobs(self):
        scenario = _scenario(n_apps=12)
        serial = run_scenario(scenario, n_clusters=3, capacity=6,
                              policy="sc-mpki")
        pooled = run_scenario(scenario, n_clusters=3, capacity=6,
                              policy="sc-mpki", jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True)


class TestScenarioExperiment:
    def test_registered(self):
        assert "scenario" in EXPERIMENTS
        exp = EXPERIMENTS["scenario"]
        assert "runner" in exp.accepts

    def test_quick_run_has_row_per_policy(self, capsys):
        exp = EXPERIMENTS["scenario"]
        result = exp.run(ExperimentParams(quick=True))
        assert [r["policy"] for r in result["rows"]] == list(POLICIES)
        for row in result["rows"]:
            assert set(row["latency"]) == {"p50", "p95", "p99"}
            assert 0.0 <= row["sla"] <= 1.0
            assert 0.0 <= row["fairness"] <= 1.0
        exp.print_table(result)
        out = capsys.readouterr().out
        assert "Scenario study" in out and "sc-mpki" in out

    def test_serial_parallel_cached_bit_identical(self, tmp_path):
        exp = EXPERIMENTS["scenario"]

        def run(jobs, use_cache):
            params = ExperimentParams(
                quick=True, jobs=jobs, use_cache=use_cache,
                cache_dir=tmp_path / "cache")
            return json.dumps(exp.run(params), sort_keys=True)

        serial = run(1, False)
        parallel = run(2, False)
        cold = run(1, True)          # populates the cache
        warm = run(1, True)          # served from the cache
        assert serial == parallel == cold == warm
        assert exp.last_runner.stats.cache_hits > 0


class TestScenarioCLI:
    def test_scenario_quick_smoke(self, capsys):
        assert main(["scenario", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Scenario study" in out

    def test_scenario_flags(self, capsys):
        argv = ["scenario", "--quick", "--no-cache", "--shape",
                "diurnal", "--clusters", "2", "--policy", "sc-mpki"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "diurnal traffic" in out
        assert "round-robin" not in out

    def test_flags_rejected_for_other_experiments(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--shape", "bursty"])
        with pytest.raises(SystemExit):
            main(["fig6", "--clusters", "2"])

    def test_bad_shape_and_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--shape", "chaotic"])
        with pytest.raises(SystemExit):
            main(["scenario", "--policy", "random"])

    def test_trace_kind_lifecycle(self, tmp_path, capsys):
        from repro.telemetry import JSONLSink, Telemetry

        trace = tmp_path / "lifecycle.jsonl"
        telemetry = Telemetry(sinks=[JSONLSink(trace, mode="w")])
        run_cluster_scenario(_scenario(n_apps=6),
                             telemetry=telemetry)
        telemetry.close()
        assert main(["trace", str(trace), "--kind", "lifecycle"]) == 0
        out = capsys.readouterr().out
        assert "lifecycle records" in out
        assert "per-app residency" in out
        assert "arrive" in out
