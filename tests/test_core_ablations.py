"""Ablations on the detailed core models.

These pin down that each microarchitectural feature actually earns its
keep in the model — the same sanity checks a hardware study would run.
"""

from dataclasses import replace


from repro.cores import InOrderCore, OutOfOrderCore
from repro.cores.params import INO_PARAMS, OOO_PARAMS
from repro.memory import MemoryHierarchy
from repro.workloads import make_benchmark


def mem():
    return MemoryHierarchy().core_view(0)


class TestWindowSize:
    def test_bigger_rob_helps_ilp_code(self):
        bench = make_benchmark("libquantum", seed=9)
        small = replace(OOO_PARAMS, rob_size=8)
        big = replace(OOO_PARAMS, rob_size=128)
        r_small = OutOfOrderCore(mem(), params=small).run(
            bench.stream(), 15_000)
        r_big = OutOfOrderCore(mem(), params=big).run(
            bench.stream(), 15_000)
        assert r_big.ipc > r_small.ipc

    def test_tiny_rob_approaches_inorder(self):
        bench = make_benchmark("hmmer", seed=9)
        tiny = replace(OOO_PARAMS, rob_size=2)
        r_tiny = OutOfOrderCore(mem(), params=tiny).run(
            bench.stream(), 15_000)
        r_ino = InOrderCore(mem()).run(bench.stream(), 15_000)
        assert r_tiny.ipc < r_ino.ipc * 1.6


class TestWidth:
    def test_wider_machine_is_faster(self):
        bench = make_benchmark("hmmer", seed=9)
        narrow = replace(OOO_PARAMS, width=1)
        r1 = OutOfOrderCore(mem(), params=narrow).run(
            bench.stream(), 15_000)
        r3 = OutOfOrderCore(mem()).run(bench.stream(), 15_000)
        assert r3.ipc > r1.ipc * 1.3

    def test_width_one_capped_at_ipc_one(self):
        bench = make_benchmark("hmmer", seed=9)
        narrow = replace(OOO_PARAMS, width=1)
        r = OutOfOrderCore(mem(), params=narrow).run(
            bench.stream(), 10_000)
        assert r.ipc <= 1.0


class TestLoadStoreQueues:
    def test_small_lq_throttles_memory_code(self):
        bench = make_benchmark("bwaves", seed=9)
        small = replace(OOO_PARAMS, lq_size=2)
        r_small = OutOfOrderCore(mem(), params=small).run(
            bench.stream(), 15_000)
        r_full = OutOfOrderCore(mem()).run(bench.stream(), 15_000)
        assert r_full.ipc >= r_small.ipc

    def test_mshr_limit_throttles_miss_bursts(self):
        bench = make_benchmark("mcf", seed=9)
        one = replace(INO_PARAMS, mem_inflight=1)
        eight = replace(INO_PARAMS, mem_inflight=8)
        r_one = InOrderCore(mem(), params=one).run(bench.stream(), 10_000)
        r_eight = InOrderCore(mem(), params=eight).run(
            bench.stream(), 10_000)
        assert r_eight.ipc >= r_one.ipc


class TestPipelineDepth:
    def test_deeper_pipe_pays_more_per_mispredict(self):
        bench = make_benchmark("gobmk", seed=9)  # branchy
        shallow = replace(OOO_PARAMS, fetch_to_issue=2)
        deep = replace(OOO_PARAMS, fetch_to_issue=10)
        r_shallow = OutOfOrderCore(mem(), params=shallow).run(
            bench.stream(), 15_000)
        r_deep = OutOfOrderCore(mem(), params=deep).run(
            bench.stream(), 15_000)
        assert r_shallow.ipc >= r_deep.ipc
