"""Tests for phase characterization (analytic and measured models)."""

import pytest

from repro.characterize import analytic_model, measure_model
from repro.characterize.phase_model import (
    OINO_REPLAY_EFFICIENCY,
    PhaseProfile,
    TRACES_PER_KILO_INSTR,
)
from repro.workloads import ALL_BENCHMARKS, get_profile


def phase(memoizable=0.9, ipc_ooo=2.0, ratio=0.5, vol=0.02, kb=2.0):
    return PhaseProfile(
        phase_id=0, weight=1.0, ipc_ooo=ipc_ooo,
        ipc_ino=ipc_ooo * ratio, memoizable=memoizable,
        volatility=vol, trace_kb=kb,
    )


class TestPhaseProfile:
    def test_sc_mpki_ooo_reflects_non_memoizability(self):
        assert phase(memoizable=1.0).sc_mpki_ooo == pytest.approx(0.0)
        assert phase(memoizable=0.0).sc_mpki_ooo == pytest.approx(
            TRACES_PER_KILO_INSTR)

    def test_sc_mpki_ino_falls_with_coverage(self):
        p = phase(memoizable=0.8)
        assert p.sc_mpki_ino(1.0) < p.sc_mpki_ino(0.5) < p.sc_mpki_ino(0.0)

    def test_full_coverage_matches_producer_mpki(self):
        p = phase(memoizable=0.8)
        assert p.sc_mpki_ino(1.0) == pytest.approx(p.sc_mpki_ooo)

    def test_oino_ipc_interpolates(self):
        p = phase(memoizable=0.9, ipc_ooo=2.0, ratio=0.5)
        assert p.ipc_oino(0.0) == pytest.approx(p.ipc_ino)
        full = p.ipc_oino(1.0)
        assert p.ipc_ino < full < p.ipc_ooo
        assert full == pytest.approx(
            0.9 * OINO_REPLAY_EFFICIENCY * 2.0 + 0.1 * 1.0)

    def test_unmemoizable_phase_gains_nothing(self):
        p = phase(memoizable=0.0)
        assert p.ipc_oino(1.0) == pytest.approx(p.ipc_ino)


class TestAnalyticModel:
    def test_every_benchmark_builds(self):
        for name in ALL_BENCHMARKS:
            model = analytic_model(name)
            assert model.phases
            assert model.pass_instructions > 0

    def test_weights_sum_to_one(self):
        for name in ("bzip2", "gcc", "hmmer"):
            model = analytic_model(name)
            assert sum(p.weight for p in model.phases) == pytest.approx(1.0)

    def test_mean_ipcs_track_targets(self):
        for name in ALL_BENCHMARKS:
            prof = get_profile(name)
            model = analytic_model(name)
            assert model.mean_ipc_ooo == pytest.approx(
                prof.target_ipc_ooo, rel=0.25)
            ratio = model.mean_ipc_ino / model.mean_ipc_ooo
            assert ratio == pytest.approx(prof.target_ipc_ratio, rel=0.2)

    def test_ino_never_exceeds_ooo(self):
        for name in ALL_BENCHMARKS:
            for p in analytic_model(name).phases:
                assert p.ipc_ino <= p.ipc_ooo

    def test_deterministic(self):
        a = analytic_model("gcc")
        b = analytic_model("gcc")
        assert a.phases == b.phases

    def test_phase_at_walks_phases(self):
        model = analytic_model("bzip2")
        assert model.phase_at(0).phase_id == 0
        seen = {model.phase_at(i * 100_000).phase_id for i in range(40)}
        assert len(seen) == len(model.phases)

    def test_phase_at_wraps(self):
        model = analytic_model("hmmer")
        assert model.phase_at(model.pass_instructions).phase_id == \
            model.phase_at(0).phase_id

    def test_hpd_more_memoizable_than_lpd_on_average(self):
        hpd = [analytic_model(n) for n in ALL_BENCHMARKS
               if get_profile(n).category == "HPD"]
        lpd = [analytic_model(n) for n in ALL_BENCHMARKS
               if get_profile(n).category == "LPD"]
        mean_hpd = sum(
            sum(p.memoizable * p.weight for p in m.phases)
            for m in hpd) / len(hpd)
        mean_lpd = sum(
            sum(p.memoizable * p.weight for p in m.phases)
            for m in lpd) / len(lpd)
        assert mean_hpd > mean_lpd


class TestMeasureModel:
    """Slower: grounds the phase profiles in the detailed cores."""

    def test_measured_model_structure(self):
        model = measure_model("hmmer", instructions_per_phase=6_000)
        prof = get_profile("hmmer")
        assert len(model.phases) == prof.phase_count
        assert sum(p.weight for p in model.phases) == pytest.approx(1.0)

    def test_measured_memoizability_ordering(self):
        memo_hmmer = measure_model(
            "hmmer", instructions_per_phase=6_000)
        memo_astar = measure_model(
            "astar", instructions_per_phase=6_000)
        frac = lambda m: sum(
            p.memoizable * p.weight for p in m.phases)
        assert frac(memo_hmmer) > frac(memo_astar)

    def test_measured_ino_below_ooo(self):
        model = measure_model("gcc", instructions_per_phase=5_000)
        for p in model.phases:
            assert p.ipc_ino <= p.ipc_ooo
