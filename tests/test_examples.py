"""The example scripts are deliverables: they must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their story"


def test_quickstart_tells_the_mirage_story():
    path = next(p for p in EXAMPLES if p.stem == "quickstart")
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )
    out = proc.stdout
    assert "OoO producer" in out
    assert "OinO consumer" in out
    assert "mirage" in out.lower()
