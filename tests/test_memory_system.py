"""Unit tests for prefetcher, bus, coherence and the hierarchy."""

import pytest

from repro.memory import (
    CoherenceDirectory,
    MemoryHierarchy,
    SharedBus,
    StridePrefetcher,
)
from repro.memory.hierarchy import L1_LATENCY, L2_LATENCY, MEM_LATENCY


class TestStridePrefetcher:
    def test_detects_constant_stride(self):
        pf = StridePrefetcher(degree=2, confirm_threshold=2)
        pc = 0x1000
        issued = []
        for i in range(6):
            issued = pf.observe(pc, 0x8000 + i * 64)
        assert issued == [0x8000 + 6 * 64, 0x8000 + 7 * 64]

    def test_no_prefetch_before_confirmation(self):
        pf = StridePrefetcher(confirm_threshold=2)
        assert pf.observe(0x1000, 0x8000) == []
        assert pf.observe(0x1000, 0x8040) == []

    def test_random_addresses_never_confirm(self):
        pf = StridePrefetcher()
        addrs = [0x8000, 0x9137, 0x8890, 0xA001, 0x8123]
        for a in addrs:
            assert pf.observe(0x1000, a) == []

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher(confirm_threshold=2)
        for i in range(5):
            pf.observe(0x1000, 0x8000 + i * 64)
        pf.observe(0x1000, 0x20000)        # break the pattern
        assert pf.observe(0x1000, 0x20040) == []   # must re-confirm

    def test_table_eviction(self):
        pf = StridePrefetcher(entries=2)
        pf.observe(0x1000, 0x8000)
        pf.observe(0x2000, 0x9000)
        pf.observe(0x3000, 0xA000)   # evicts 0x1000
        assert len(pf._table) == 2


class TestSharedBus:
    def test_transfer_duration(self):
        bus = SharedBus(width_bytes=32)
        start, finish = bus.transfer(0, 64)
        assert (start, finish) == (0, 2)

    def test_partial_beat_rounds_up(self):
        bus = SharedBus(width_bytes=32)
        assert bus.beats_for(33) == 2
        assert bus.beats_for(32) == 1

    def test_contention_queues(self):
        bus = SharedBus(width_bytes=32)
        bus.transfer(0, 320)          # busy until cycle 10
        start, finish = bus.transfer(5, 32)
        assert start == 10 and finish == 11
        assert bus.stats.contention_cycles == 5

    def test_zero_bytes_is_free(self):
        bus = SharedBus()
        assert bus.transfer(7, 0) == (7, 7)
        assert bus.stats.transfers == 0

    def test_occupancy(self):
        bus = SharedBus(width_bytes=32)
        bus.transfer(0, 320)
        assert bus.occupancy(20) == pytest.approx(0.5)
        assert bus.occupancy(0) == 0.0


class TestCoherence:
    def test_exclusive_then_shared(self):
        d = CoherenceDirectory()
        d.on_read(0, 0x1000)
        d.on_read(1, 0x1000)
        assert d.invalidations == 0

    def test_write_invalidates_sharers(self):
        d = CoherenceDirectory()
        d.on_read(0, 0x1000)
        d.on_read(1, 0x1000)
        sent = d.on_write(0, 0x1000)
        assert sent == 1
        assert d.invalidations == 1

    def test_dirty_read_intervention(self):
        d = CoherenceDirectory()
        d.on_write(0, 0x1000)
        assert d.on_read(1, 0x1000) == 1

    def test_flush_core_removes_everywhere(self):
        d = CoherenceDirectory()
        d.on_read(0, 0x1000)
        d.on_read(0, 0x2000)
        d.on_read(1, 0x2000)
        dropped = d.flush_core(0)
        assert dropped == 2
        assert d.tracked_lines == 1   # core 1 still holds 0x2000

    def test_evict_cleans_empty_entries(self):
        d = CoherenceDirectory()
        d.on_read(0, 0x1000)
        d.evict(0, 0x1000)
        assert d.tracked_lines == 0


class TestHierarchy:
    def test_l1_hit_latency(self):
        mem = MemoryHierarchy().core_view(0)
        mem.load(0x100, 0x8000)
        res = mem.load(0x100, 0x8000)
        assert res.l1_hit and res.latency == L1_LATENCY

    def test_l2_hit_latency(self):
        hier = MemoryHierarchy()
        c0, c1 = hier.core_view(0), hier.core_view(1)
        c0.load(0x100, 0x8000)       # fills L2
        c1.load(0x100, 0x8040)       # warms c1's DTLB for the page
        # now=100: past the earlier refills' bus occupancy.
        res = c1.load(0x100, 0x8000, now=100)
        assert not res.l1_hit and res.l2_hit
        assert res.latency == L1_LATENCY + L2_LATENCY

    def test_memory_latency(self):
        mem = MemoryHierarchy().core_view(0)
        mem.load(0x100, 0x8040)      # warm the DTLB for this page
        res = mem.load(0x100, 0x8000, now=100)
        assert res.went_to_memory
        assert res.latency == L1_LATENCY + L2_LATENCY + MEM_LATENCY

    def test_bus_contention_adds_latency(self):
        hier = MemoryHierarchy()
        c0, c1 = hier.core_view(0), hier.core_view(1)
        c0.load(0x100, 0x8000)             # refill occupies the bus
        res = c1.load(0x100, 0x8000, now=0)  # queues behind it
        assert res.latency > L1_LATENCY + L2_LATENCY

    def test_tlb_miss_adds_walk_latency(self):
        mem = MemoryHierarchy().core_view(0)
        mem.load(0x100, 0x8000)            # warm line + TLB
        far = mem.load(0x100, 0x8000 + (1 << 22))  # new page, cold line
        near = mem.load(0x100, 0x8000)     # warm everything
        assert near.latency == L1_LATENCY
        assert far.latency > L1_LATENCY

    def test_migration_flushes_tlbs(self):
        mem = MemoryHierarchy().core_view(0)
        mem.load(0x100, 0x8000)
        assert mem.dtlb.resident > 0
        mem.flush_for_migration()
        assert mem.dtlb.resident == 0
        assert mem.itlb.resident == 0

    def test_core_views_are_cached(self):
        hier = MemoryHierarchy()
        assert hier.core_view(3) is hier.core_view(3)

    def test_fetch_uses_l1i(self):
        mem = MemoryHierarchy().core_view(0)
        mem.fetch(0x4000)
        assert mem.l1i.stats.accesses == 1
        assert mem.l1d.stats.accesses == 0

    def test_migration_flush(self):
        hier = MemoryHierarchy()
        mem = hier.core_view(0)
        mem.load(0x100, 0x8000)
        mem.store(0x104, 0x9000)
        dirty, resident = mem.flush_for_migration()
        assert dirty == 1 and resident == 2
        assert mem.l1d.resident_lines == 0

    def test_prefetcher_fills_l2(self):
        hier = MemoryHierarchy()
        mem = hier.core_view(0)
        # Strided misses train the L2 prefetcher.
        for i in range(8):
            mem.load(0x100, 0x100000 + i * 64)
        assert hier.prefetcher.issued > 0
