"""Tests for the sweep runner: units, cache, and executor.

The contract under test: serial, parallel, and cached execution all
yield bit-identical results, and the cache is keyed so that any change
of experiment, unit parameters, or package version misses.
"""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentParams
from repro.experiments import fig7_throughput
from repro.runner import (
    MISS,
    ResultCache,
    SweepRunner,
    call_unit,
    cmp_unit,
    execute_unit,
    homo_unit,
)
from repro.runner import units as units_mod
from repro.workloads import standard_mixes

MIX = standard_mixes(4)[0]


class TestUnits:
    def test_cmp_unit_matches_run_mix(self):
        from repro.experiments.common import run_mix

        assert execute_unit(cmp_unit(MIX, "SC-MPKI")) == run_mix(
            MIX, "SC-MPKI")

    def test_homo_unit_matches_homo_baselines(self):
        from repro.experiments.common import homo_baselines

        ooo, ino = homo_baselines(MIX)
        assert execute_unit(homo_unit(MIX, "ooo")) == ooo
        assert execute_unit(homo_unit(MIX, "ino")) == ino

    def test_call_unit_normalises_json(self):
        unit = call_unit("builtins:sorted", [3, 1, 2])
        assert execute_unit(unit) == [1, 2, 3]

    def test_units_are_hashable_and_picklable(self):
        import pickle

        unit = cmp_unit(MIX, "maxSTP")
        assert pickle.loads(pickle.dumps(unit)) == unit
        assert hash(unit) == hash(cmp_unit(MIX, "maxSTP"))


class TestCache:
    def test_cmp_result_round_trip_is_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = cmp_unit(MIX, "SC-MPKI")
        result = execute_unit(unit)
        cache.put("fig7", unit, result)
        assert cache.get("fig7", unit) == result

    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("fig7", cmp_unit(MIX, "SC-MPKI")) is MISS

    def test_key_changes_with_params_experiment_and_version(
            self, tmp_path):
        base = ResultCache(tmp_path)
        unit = cmp_unit(MIX, "SC-MPKI")
        paths = {
            base.path_for("fig7", unit),
            base.path_for("fig8", unit),
            base.path_for("fig7", cmp_unit(MIX, "maxSTP")),
            base.path_for("fig7", cmp_unit(MIX, "SC-MPKI",
                                           n_producers=2)),
            ResultCache(tmp_path, version="9.9.9").path_for("fig7", unit),
        }
        assert len(paths) == 5

    def test_key_changes_with_backend_tag(self, tmp_path):
        # Results from a different engine/backend generation (e.g. the
        # pre-unification bespoke loops) can never be served back.
        from repro.engine.backends import ENGINE_CACHE_TAG

        base = ResultCache(tmp_path)
        assert base.backend == ENGINE_CACHE_TAG
        assert ENGINE_CACHE_TAG in base.key_material(
            "fig7", cmp_unit(MIX, "SC-MPKI"))
        unit = cmp_unit(MIX, "SC-MPKI")
        other = ResultCache(tmp_path, backend="bespoke-loops-v0")
        assert base.path_for("fig7", unit) != other.path_for("fig7", unit)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = cmp_unit(MIX, "SC-MPKI")
        path = cache.path_for("fig7", unit)
        path.parent.mkdir(parents=True)
        path.write_text("not json {")
        assert cache.get("fig7", unit) is MISS


class TestExecutor:
    def test_serial_and_parallel_fig7_identical(self):
        serial = fig7_throughput.run(n_values=(4,), n_mixes=2)
        parallel = fig7_throughput.run(
            n_values=(4,), n_mixes=2, runner=SweepRunner(jobs=2))
        assert serial == parallel

    def test_cache_hit_skips_execution(self, tmp_path, monkeypatch):
        def run_once():
            runner = SweepRunner(cache=ResultCache(tmp_path),
                                 experiment="fig7")
            return runner, fig7_throughput.run(
                n_values=(4,), n_mixes=2, runner=runner)

        _, cold = run_once()

        calls = {"n": 0}
        real = units_mod.timed_execute

        def counting(unit):
            calls["n"] += 1
            return real(unit)

        monkeypatch.setattr(units_mod, "timed_execute", counting)
        runner, warm = run_once()
        assert calls["n"] == 0
        assert warm == cold
        assert runner.stats.cache_hits == runner.stats.total_units > 0
        assert runner.stats.cache_misses == 0

    def test_cache_invalidated_when_params_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache, experiment="fig7")
        fig7_throughput.run(n_values=(4,), n_mixes=2, runner=runner)

        changed = SweepRunner(cache=cache, experiment="fig7")
        fig7_throughput.run(n_values=(4,), n_mixes=2, seed=1,
                            runner=changed)
        assert changed.stats.cache_misses == changed.stats.total_units

    def test_pickling_hostile_unit_falls_back_to_serial(self):
        class Local:  # unpicklable: defined inside a function body
            def __len__(self):
                return 3

        runner = SweepRunner(jobs=2)
        results = runner.map([
            call_unit("builtins:len", Local()),
            call_unit("builtins:len", Local()),
        ])
        assert results == [3, 3]
        assert runner.stats.mode == "serial"

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestExperimentAPI:
    def test_registry_objects_expose_uniform_api(self):
        for exp in EXPERIMENTS.values():
            assert exp.name and exp.title and exp.figure
            assert callable(exp.run)
            assert callable(exp.print_table)
            assert callable(exp.main)

    def test_quick_params_route_through_registry(self):
        exp = EXPERIMENTS["fig7"]
        result = exp.run(ExperimentParams(quick=True, n_mixes=2))
        assert len(result["rows"]) == 4
        # quick + explicit n_mixes: the explicit value wins.
        assert exp.last_runner is not None

    def test_back_compat_kwargs_still_accepted(self):
        result = EXPERIMENTS["fig7"].run(n_values=(4,), n_mixes=2)
        assert [r["n"] for r in result["rows"]] == [4]

    def test_quick_as_plain_kwarg(self):
        # ``run(quick=True)`` maps through QUICK_OVERRIDES even though
        # no driver takes a ``quick`` parameter any more.
        exp = EXPERIMENTS["fig12"]
        assert exp.run(quick=True) == exp.run(ExperimentParams(quick=True))

    def test_params_build_runner_with_cache(self, tmp_path):
        exp = EXPERIMENTS["fig12"]
        params = ExperimentParams(jobs=1, use_cache=True,
                                  cache_dir=tmp_path)
        first = exp.run(params)
        assert exp.last_runner.stats.cache_misses > 0
        second = exp.run(params)
        assert exp.last_runner.stats.cache_hits > 0
        assert exp.last_runner.stats.cache_misses == 0
        assert first == second
