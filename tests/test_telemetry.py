"""Tests for the telemetry subsystem: schema, sinks, counters, and the
migration-cost accounting both tiers must report identically."""

import json

import pytest

from repro.arbiter import SCMPKIArbitrator
from repro.cmp.detailed import DetailedMirageCluster
from repro.experiments.common import make_system
from repro.telemetry import (
    ArbitrationRecord,
    Counters,
    EnergyRecord,
    IntervalRecord,
    JSONLSink,
    MemorySink,
    MigrationRecord,
    PhaseProfiler,
    RunRecord,
    Telemetry,
    dump_record,
    from_record,
    read_trace,
    to_record,
)
from repro.workloads import WorkloadMix, make_benchmark

MIX = WorkloadMix(name="tele", category="Random",
                  benchmarks=("bzip2", "astar", "hmmer", "gamess"))

EXAMPLES = [
    IntervalRecord(interval=3, app="bzip2", on_ooo=True, ipc=1.25,
                   speedup=0.97, sc_mpki_ino=4.5, delta_sc_mpki=0.1,
                   phase_id=2),
    ArbitrationRecord(interval=0, chosen=["bzip2"], slots=1),
    MigrationRecord(interval=7, app="astar", to_ooo=False, sc_bytes=4096,
                    drain_cycles=10, l1_warmup_cycles=160,
                    sc_transfer_cycles=10, bus_contention_cycles=3,
                    charged_cycles=183.0),
    EnergyRecord(interval=2, app="hmmer", core="oino", energy_pj=812.5),
    RunRecord(config="4:1-Mirage", arbitrator="SC-MPKI", intervals=50,
              total_cycles=1e6, counters={"migration.count": 4}),
]


class TestEventSchema:
    @pytest.mark.parametrize("event", EXAMPLES,
                             ids=[e.kind for e in EXAMPLES])
    def test_round_trip(self, event):
        record = to_record(event)
        assert record["kind"] == event.kind
        assert from_record(record) == event

    @pytest.mark.parametrize("event", EXAMPLES,
                             ids=[e.kind for e in EXAMPLES])
    def test_json_round_trip(self, event):
        line = dump_record(event)
        assert from_record(json.loads(line)) == event

    def test_kind_is_first_key(self):
        # JSONL lines lead with the discriminator, so traces are
        # greppable by kind without parsing.
        for event in EXAMPLES:
            assert next(iter(to_record(event))) == "kind"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="warp"):
            from_record({"kind": "warp", "x": 1})

    def test_float_exactness(self):
        ugly = 0.1 + 0.2  # not representable; repr round-trips exactly
        event = EnergyRecord(interval=0, app="a", core="ino",
                             energy_pj=ugly)
        back = from_record(json.loads(dump_record(event)))
        assert back.energy_pj == ugly


class TestSinks:
    def test_memory_sink_filters_kinds(self):
        telemetry = Telemetry()
        only_runs = telemetry.attach(MemorySink(kinds={"run"}))
        everything = telemetry.attach(MemorySink())
        for event in EXAMPLES:
            telemetry.emit(event)
        assert [e.kind for e in only_runs.events] == ["run"]
        assert everything.events == EXAMPLES
        assert everything.records("migration") == [EXAMPLES[2]]

    def test_wants_reflects_attached_sinks(self):
        telemetry = Telemetry()
        assert not telemetry.wants("interval")
        sink = telemetry.attach(MemorySink(kinds={"interval"}))
        assert telemetry.wants("interval")
        assert not telemetry.wants("energy")
        telemetry.detach(sink)
        assert not telemetry.wants("interval")

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path)
        for event in EXAMPLES:
            sink.emit(event)
        sink.close()
        assert sink.written == len(EXAMPLES)
        assert read_trace(path) == EXAMPLES

    def test_jsonl_append_mode(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for chunk in (EXAMPLES[:2], EXAMPLES[2:]):
            sink = JSONLSink(path, mode="a")
            for event in chunk:
                sink.emit(event)
            sink.close()
        assert read_trace(path) == EXAMPLES

    def test_jsonl_lazy_creation(self, tmp_path):
        path = tmp_path / "never.jsonl"
        JSONLSink(path).close()
        assert not path.exists()


class TestCountersAndProfiler:
    def test_bump_and_merge(self):
        counters = Counters()
        counters.bump("a")
        counters.bump("a", 4)
        counters.merge({"a": 1, "b": 2.5})
        assert counters == {"a": 6, "b": 2.5}

    def test_profiler(self):
        profiler = PhaseProfiler()
        profiler.add("execution", 0.25)
        profiler.add("execution", 0.25)
        with profiler.time("arbitration"):
            pass
        assert profiler.calls["execution"] == 2
        assert profiler.seconds["execution"] == 0.5
        assert profiler.total_seconds >= 0.5
        assert "execution" in profiler.summary()


class TestIntervalTierTelemetry:
    def test_history_equals_interval_sink(self):
        # The legacy record_history path and an explicit interval sink
        # observe the same stream of records.
        telemetry, trace = Telemetry.recording(kinds={"interval"})
        system = make_system(MIX, "SC-MPKI", record_history=True,
                             telemetry=telemetry)
        system.run(max_intervals=60)
        assert system.history == trace.events
        assert len(system.history) == 60 * len(MIX)

    def test_migration_records_match_cost_model(self):
        # Satellite: the SC bus-transfer bytes and cycle charges in the
        # telemetry must be exactly what MigrationCostModel computed.
        telemetry, trace = Telemetry.recording(kinds={"migration"})
        system = make_system(MIX, "SC-MPKI", telemetry=telemetry)
        system.run(max_intervals=120)
        records = trace.records("migration")
        events = system.migration.events
        assert len(records) == len(events) > 0
        interval = system.config.scale.interval_cycles
        for record, event in zip(records, events):
            assert record.app == event.app
            assert record.interval == event.interval_index
            assert record.to_ooo == event.to_ooo
            assert record.drain_cycles == event.drain_cycles
            assert record.l1_warmup_cycles == event.l1_warmup_cycles
            assert record.sc_transfer_cycles == event.sc_transfer_cycles
            assert (record.bus_contention_cycles
                    == event.bus_contention_cycles)
            assert record.charged_cycles == min(
                interval * 0.9, event.total_cycles)
        assert telemetry.counters["migration.count"] == len(events)
        assert telemetry.counters["migration.sc_bytes"] == sum(
            r.sc_bytes for r in records)

    def test_run_record_carries_counters(self):
        telemetry, trace = Telemetry.recording(kinds={"run"})
        system = make_system(MIX, "SC-MPKI", telemetry=telemetry)
        result = system.run(max_intervals=50)
        (run,) = trace.records("run")
        assert run.config == system.config.name
        assert run.arbitrator == "SC-MPKI"
        assert run.intervals == result.intervals
        assert run.counters["migration.count"] == result.migrations
        assert run.counters["run.intervals"] == result.intervals

    def test_untraced_run_emits_nothing(self):
        system = make_system(MIX, "SC-MPKI")
        system.run(max_intervals=50)
        assert system.history == []
        # Counters still accumulate (they are cheap totals).
        assert system.telemetry.counters["run.intervals"] == 50


class TestDetailedTierTelemetry:
    @pytest.fixture(scope="class")
    def cluster_and_trace(self):
        benches = [
            make_benchmark(name, seed=9, base_addr=(i + 1) << 34)
            for i, name in enumerate(("bzip2", "astar"))
        ]
        telemetry, trace = Telemetry.recording()
        cluster = DetailedMirageCluster(
            benches, SCMPKIArbitrator(), slice_instructions=3_000,
            telemetry=telemetry)
        result = cluster.run(n_slices=12)
        return cluster, trace, result

    def test_migration_records_match_cost_model(self, cluster_and_trace):
        # Satellite: same exactness requirement as the interval tier.
        cluster, trace, result = cluster_and_trace
        records = trace.records("migration")
        events = cluster.migration.events
        assert len(records) == len(events) == result.migrations > 0
        for record, event in zip(records, events):
            assert record.app == event.app
            assert record.to_ooo == event.to_ooo
            assert record.drain_cycles == event.drain_cycles
            assert record.l1_warmup_cycles == event.l1_warmup_cycles
            assert record.sc_transfer_cycles == event.sc_transfer_cycles
            assert (record.bus_contention_cycles
                    == event.bus_contention_cycles)
            assert record.charged_cycles == float(event.total_cycles)

    def test_sc_bytes_sum_matches_cluster_total(self, cluster_and_trace):
        cluster, trace, _result = cluster_and_trace
        records = trace.records("migration")
        assert (sum(r.sc_bytes for r in records)
                == cluster.sc_bytes_transferred > 0)

    def test_l1_flush_charges_observed(self, cluster_and_trace):
        cluster, trace, _result = cluster_and_trace
        records = trace.records("migration")
        # Early migrations can flush cold caches, but once the cores
        # have run, lines must actually be dropped.
        assert any(r.l1_flush_lines > 0 for r in records)
        assert all(r.l1_flush_dirty >= 0 for r in records)
        counters = cluster.telemetry.counters
        assert counters["migration.l1_flush_lines"] == sum(
            r.l1_flush_lines for r in records)

    def test_interval_records_per_slice(self, cluster_and_trace):
        cluster, trace, _result = cluster_and_trace
        intervals = trace.records("interval")
        assert len(intervals) == 12 * len(cluster.apps)
        assert {r.app for r in intervals} == {"bzip2", "astar"}
        assert all(r.phase_id == -1 for r in intervals)

    def test_core_counters_merged(self, cluster_and_trace):
        cluster, _trace, _result = cluster_and_trace
        counters = cluster.telemetry.counters
        assert counters["ooo.instructions"] > 0
        assert counters["ino.instructions"] > 0
        # Per-app Schedule Cache stats land under sc.<app>.*
        assert counters["sc.bzip2.lookups"] > 0

    def test_run_record(self, cluster_and_trace):
        _cluster, trace, _result = cluster_and_trace
        (run,) = trace.records("run")
        assert run.arbitrator == "SC-MPKI"
        assert run.intervals == 12
        assert run.counters["ooo.instructions"] > 0
