"""Unit tests for the synthetic workload suite."""

import itertools

import pytest

from repro.isa import OpClass
from repro.workloads import (
    HPD_BENCHMARKS,
    LPD_BENCHMARKS,
    SPEC_PROFILES,
    get_profile,
    make_benchmark,
    standard_mixes,
)
from repro.workloads.mixes import MIX_HPD, MIX_LPD, MIX_RANDOM, WorkloadMix
from repro.workloads.profiles import BenchmarkProfile


def take(name, n, seed=1):
    return list(itertools.islice(make_benchmark(name, seed=seed).stream(), n))


class TestProfiles:
    def test_suite_has_26_benchmarks(self):
        assert len(SPEC_PROFILES) == 26
        assert len(HPD_BENCHMARKS) == 13
        assert len(LPD_BENCHMARKS) == 13

    def test_paper_table1_members(self):
        assert "hmmer" in HPD_BENCHMARKS
        assert "mcf" in HPD_BENCHMARKS
        assert "astar" in LPD_BENCHMARKS
        assert "bzip2" in LPD_BENCHMARKS

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile("quake3")

    def test_targets_consistent_with_category(self):
        for prof in SPEC_PROFILES.values():
            if prof.category == "HPD":
                assert prof.target_ipc_ratio < 0.6
            else:
                assert prof.target_ipc_ratio >= 0.6

    def test_category_ratio_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad", category="HPD", chain_frac=0.5, use_distance=2,
                loop_carried_frac=0.1, accum_chains=2, mem_frac=0.3,
                store_frac=0.3, fp_frac=0.0, longop_frac=0.05,
                footprint_kb=64, stride_frac=0.8, pointer_chase_frac=0.0,
                chase_chains=1, branch_noise=0.02, internal_branches=2,
                body_len=48, variants=1, variant_switch_prob=0.0,
                code_kb=16, phase_count=1, phase_weights=(1.0,),
                loops_per_phase=1, target_ipc_ooo=1.0,
                target_ipc_ratio=0.8,   # inconsistent with HPD
                target_memoizable=0.5, schedule_volatility=0.1,
            )

    def test_phase_weights_length_checked(self):
        prof = get_profile("bzip2")
        assert len(prof.phase_weights) == prof.phase_count


class TestGenerator:
    def test_stream_determinism(self):
        a = take("gcc", 3000)
        b = take("gcc", 3000)
        assert all(
            x.pc == y.pc and x.opclass == y.opclass
            and x.mem_addr == y.mem_addr and x.taken == y.taken
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self):
        a = take("gcc", 2000, seed=1)
        b = take("gcc", 2000, seed=2)
        assert any(x.mem_addr != y.mem_addr or x.taken != y.taken
                   for x, y in zip(a, b))

    def test_sequence_numbers_monotonic(self):
        insns = take("hmmer", 2000)
        assert [i.seq for i in insns] == list(range(2000))

    def test_trace_lengths_near_body_len(self):
        insns = take("hmmer", 20_000)
        backs = sum(1 for i in insns if i.is_backward_branch)
        mean_len = len(insns) / max(1, backs)
        assert 30 < mean_len < 110   # paper: ~50-instruction traces

    def test_memory_ops_have_addresses(self):
        for insn in take("mcf", 3000):
            if insn.is_mem:
                assert insn.mem_addr is not None

    def test_mem_fraction_tracks_profile(self):
        prof = get_profile("mcf")
        insns = take("mcf", 20_000)
        frac = sum(1 for i in insns if i.is_mem) / len(insns)
        assert abs(frac - prof.mem_frac) < 0.18

    def test_fp_benchmark_uses_fp_units(self):
        insns = take("bwaves", 5000)
        assert any(i.opclass in (OpClass.FALU, OpClass.FMUL, OpClass.FDIV)
                   for i in insns)

    def test_int_benchmark_avoids_fp(self):
        insns = take("gobmk", 5000)
        fp = sum(1 for i in insns
                 if i.opclass in (OpClass.FALU, OpClass.FMUL, OpClass.FDIV))
        assert fp == 0

    def test_phase_at_cycles(self):
        bench = make_benchmark("bzip2")
        budgets = bench.phase_budgets
        assert len(budgets) == get_profile("bzip2").phase_count
        assert bench.phase_at(0) == 0
        assert bench.phase_at(budgets[0]) == 1
        total = sum(budgets)
        assert bench.phase_at(total) == 0   # wraps to a new pass

    def test_phase_changes_move_code_region(self):
        # Loop bursts overshoot phase budgets, so exact boundaries are
        # fuzzy; over a full pass the stream must still visit several
        # distinct per-phase code regions.
        bench = make_benchmark("bzip2")
        pass_len = sum(bench.phase_budgets)
        regions = {i.pc >> 16 for i in
                   itertools.islice(bench.stream(), pass_len)}
        assert len(regions) >= 3

    def test_address_spaces_disjoint_between_benchmarks(self):
        a = make_benchmark("hmmer", base_addr=0x1 << 32)
        b = make_benchmark("gcc", base_addr=0x2 << 32)
        addrs_a = {i.mem_addr for i in
                   itertools.islice(a.stream(), 3000) if i.is_mem}
        addrs_b = {i.mem_addr for i in
                   itertools.islice(b.stream(), 3000) if i.is_mem}
        assert addrs_a.isdisjoint(addrs_b)

    def test_taken_forward_branches_skip_instructions(self):
        insns = take("gobmk", 30_000)
        skips = [
            (a, b) for a, b in zip(insns, insns[1:])
            if a.is_branch and a.taken and not a.is_backward_branch
        ]
        assert skips, "expected taken forward branches"
        assert all(b.pc == a.target for a, b in skips)


class TestMixes:
    def test_standard_mix_count(self):
        mixes = standard_mixes(8)
        assert len(mixes) == 32

    def test_mix_sizes(self):
        for mix in standard_mixes(4):
            assert len(mix) == 4

    def test_category_composition(self):
        mixes = standard_mixes(8)
        hpd = [m for m in mixes if m.category == MIX_HPD]
        lpd = [m for m in mixes if m.category == MIX_LPD]
        rnd = [m for m in mixes if m.category == MIX_RANDOM]
        assert (len(hpd), len(lpd), len(rnd)) == (5, 5, 22)
        for m in hpd:
            assert all(b in HPD_BENCHMARKS for b in m)
        for m in lpd:
            assert all(b in LPD_BENCHMARKS for b in m)

    def test_mix_determinism(self):
        assert standard_mixes(8, seed=5) == standard_mixes(8, seed=5)
        assert standard_mixes(8, seed=5) != standard_mixes(8, seed=6)

    def test_oversized_mixes_reuse_pool(self):
        mixes = standard_mixes(16)
        assert all(len(m) == 16 for m in mixes)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            standard_mixes(0)
        with pytest.raises(ValueError):
            WorkloadMix(name="x", category=MIX_HPD, benchmarks=())

    def test_rejects_bad_category(self):
        with pytest.raises(ValueError):
            WorkloadMix(name="x", category="weird", benchmarks=("gcc",))
