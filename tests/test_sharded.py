"""Process-sharded detailed runs must be bit-identical to serial ones.

:mod:`repro.cmp.sharded` fans independent cluster specs over a worker
pool; because every spec runs with a private slice memo and the merge
happens in spec order, the pooled path must produce exactly the
results the serial path does — these tests hold it to that, and cover
the env routing knob and the deterministic counter merge.
"""

import dataclasses

import pytest

from repro.cmp.sharded import (
    ENV_VAR,
    ClusterSpec,
    ShardedDetailedBackend,
    merge_counters,
    run_cluster_spec,
    shard_jobs,
)

SPECS = [
    ClusterSpec(benchmarks=(("bzip2", 5, 1 << 34), ("astar", 5, 2 << 34)),
                n_slices=4, slice_instructions=2_000,
                record_kinds=("migration",)),
    ClusterSpec(benchmarks=(("mcf", 7, 1 << 34), ("hmmer", 7, 2 << 34)),
                n_slices=4, slice_instructions=2_000,
                record_kinds=("migration",)),
]


def outcome_key(outcome):
    """Everything a ShardOutcome carries, exactly comparable."""
    r = outcome.result
    return (
        r.app_names, r.ipcs, r.ipc_ooo_alone, r.ooo_share, r.migrations,
        r.sc_bytes_transferred, r.energy_pj,
        sorted(outcome.counters.items()),
        [dataclasses.astuple(e) for e in outcome.records],
    )


class TestBitIdentity:
    def test_pooled_matches_serial(self):
        serial = ShardedDetailedBackend(SPECS, jobs=1).run()
        pooled = ShardedDetailedBackend(SPECS, jobs=2).run()
        assert [outcome_key(s) for s in serial] == \
               [outcome_key(p) for p in pooled]

    def test_outcomes_arrive_in_spec_order(self):
        outcomes = ShardedDetailedBackend(SPECS, jobs=2).run()
        assert [o.result.app_names for o in outcomes] == [
            ["bzip2", "astar"], ["mcf", "hmmer"]]

    def test_single_spec_matches_direct_call(self):
        direct = run_cluster_spec(SPECS[0])
        routed = ShardedDetailedBackend([SPECS[0]], jobs=2).run()[0]
        assert outcome_key(direct) == outcome_key(routed)

    def test_records_ship_back(self):
        outcome = run_cluster_spec(SPECS[0])
        assert all(e.kind == "migration" for e in outcome.records)
        assert outcome.counters.get("migration.count", 0) == \
            len(outcome.records)


class TestMergeCounters:
    def test_sums_across_shards(self):
        outcomes = ShardedDetailedBackend(SPECS, jobs=1).run()
        merged = merge_counters(outcomes)
        for name in ("run.intervals", "migration.count"):
            assert merged[name] == sum(
                o.counters.get(name, 0) for o in outcomes)


class TestEnvRouting:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert shard_jobs() is None

    @pytest.mark.parametrize("raw", ["0", "", "  ", "nope", "-3"])
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_VAR, raw)
        assert shard_jobs() is None

    def test_one_means_cpu_count_pool(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert shard_jobs() >= 1

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "3")
        assert shard_jobs() == 3

    def test_tier_validation_routes_identically(self, monkeypatch):
        from repro.experiments.tier_validation import detailed_tier

        monkeypatch.delenv(ENV_VAR, raising=False)
        direct = detailed_tier(4, 2_000)
        monkeypatch.setenv(ENV_VAR, "2")
        sharded = detailed_tier(4, 2_000)
        assert direct == sharded
