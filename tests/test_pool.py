"""Tests for the warm worker pool: identity, crashes, transport, LPT.

The contract under test is the one the CI ``--pool-gate`` enforces
end to end: the pool is a pure transport/scheduling layer.  Results
are bit-identical to serial execution whether envelopes travel via
the shared-memory ring or the inline fallback, whether dispatch is
FIFO or longest-processing-time-first, and across worker crashes.

All task helpers are module-level: pool workers resolve targets by
``module:qualname``, so they must be importable (functions defined
inside a test body would only exist in the parent's ``__main__``).
"""

import os

import pytest

from repro.runner import (
    ResultCache,
    WarmPool,
    cmp_unit,
    execute_unit,
    lpt_order,
    unit_digest,
    unit_label,
)
from repro.runner import pool as pool_mod
from repro.workloads import standard_mixes

MIXES = standard_mixes(4)[:3]


def _double(x):
    return x * 2


def _blob(n):
    """A deterministic large payload, to force the shm ring path."""
    return bytes(i % 251 for i in range(n))


def _rot13ish(blob):
    """A big-in, big-out transform (forces shm both directions)."""
    return bytes((b + 13) % 256 for b in blob)


def _crash_once(arg):
    """Die hard on the first call per flag file, then compute."""
    flag, value = arg
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("crashed")
        os._exit(1)
    return value * 10


def _boom(x):
    raise ValueError(f"boom {x}")


@pytest.fixture
def pool():
    p = WarmPool(2)
    yield p
    p.shutdown()


class TestMapIdentity:
    def test_results_in_input_order(self, pool):
        assert pool.map(_double, list(range(20))) == [
            x * 2 for x in range(20)]

    def test_cmp_units_bit_identical_to_serial(self, pool):
        units = [cmp_unit(mix, "SC-MPKI") for mix in MIXES]
        serial = [execute_unit(u) for u in units]
        assert pool.map(execute_unit, units) == serial

    def test_lpt_dispatch_matches_fifo_results(self, pool):
        items = list(range(12))
        fifo = pool.map(_double, items)
        lpt = pool.map(_double, items,
                       costs=[float(12 - i) for i in items])
        assert lpt == fifo == [x * 2 for x in items]

    def test_task_error_propagates(self, pool):
        with pytest.raises(pool_mod.PoolTaskError, match="boom 1"):
            pool.map(_boom, [1])
        # The pool survives a task failure and keeps serving.
        assert pool.map(_double, [5]) == [10]


class TestLptOrder:
    def test_descending_and_stable(self):
        assert lpt_order([1.0, 3.0, 2.0, 3.0]) == [1, 3, 2, 0]

    def test_unknown_costs_go_first(self):
        assert lpt_order([1.0, None, 5.0]) == [1, 2, 0]

    def test_deterministic(self):
        costs = [2.0, None, 7.0, 7.0, 0.5]
        assert lpt_order(costs) == lpt_order(list(costs))


class TestCrashRecovery:
    def test_crashed_worker_is_respawned_and_batch_requeued(
            self, tmp_path):
        pool = WarmPool(2)
        try:
            flag = str(tmp_path / "crash-flag")
            args = [(flag, v) for v in (1, 2, 3)]
            assert pool.map(_crash_once, args) == [10, 20, 30]
            assert pool.stats.respawns >= 1
            assert pool.alive
            # And the pool still works after the respawn.
            assert pool.map(_double, [7]) == [14]
        finally:
            pool.shutdown()


class TestTransport:
    def test_large_payloads_use_shared_memory(self, pool):
        if pool.ring is None:
            pytest.skip("no shared-memory support on this box")
        blobs = [_blob(200_000), _blob(300_000)]
        out = pool.map(_rot13ish, blobs)
        assert out == [_rot13ish(b) for b in blobs]
        assert pool.stats.shm_batches >= 1
        assert pool.stats.shm_results >= 1

    def test_exhausted_ring_falls_back_inline(self):
        # A ring too small for the payload: every envelope must take
        # the inline path and results must be unchanged.
        pool = WarmPool(2, ring_bytes=4096)
        try:
            blobs = [_blob(200_000), _blob(300_000)]
            assert pool.map(_rot13ish, blobs) == [
                _rot13ish(b) for b in blobs]
            assert pool.stats.shm_batches == 0
            assert pool.stats.inline_batches >= 1
        finally:
            pool.shutdown()

    def test_envelope_round_trip(self):
        obj = {"a": bytes(range(256)) * 100, "b": [1.5, None, "x"]}
        segments = pool_mod.encode_envelope(obj)
        assert pool_mod.decode_envelope(segments) == obj


class TestToggle:
    def test_shared_raises_when_disabled(self):
        old = pool_mod._enabled
        try:
            pool_mod.set_warm_pool_enabled(False)
            with pytest.raises(pool_mod.PoolUnavailable):
                WarmPool.shared(2)
        finally:
            pool_mod._enabled = old

    def test_disabled_inside_pool_worker(self, monkeypatch):
        monkeypatch.setenv(pool_mod.WORKER_ENV_VAR, "1")
        assert not pool_mod.warm_pool_enabled()


class TestCacheKeying:
    def test_key_material_ignores_pool_toggle(self, tmp_path,
                                              monkeypatch):
        cache = ResultCache(tmp_path)
        unit = cmp_unit(MIXES[0], "maxSTP")
        monkeypatch.setenv(pool_mod.ENV_VAR, "1")
        key_on = cache.key_material("fig7", unit)
        monkeypatch.setenv(pool_mod.ENV_VAR, "0")
        key_off = cache.key_material("fig7", unit)
        assert key_on == key_off
        assert "pool" not in key_on

    def test_timings_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = cmp_unit(MIXES[0], "SC-MPKI")
        digest = unit_digest("fig7", unit)
        cache.record_timings("fig7", {digest: 1.25})
        assert cache.load_timings("fig7") == {digest: 1.25}
        # Merge-on-write keeps earlier entries.
        cache.record_timings("fig7", {"other": 0.5})
        assert cache.load_timings("fig7") == {digest: 1.25,
                                              "other": 0.5}

    def test_unit_digest_is_version_free(self, tmp_path):
        unit = cmp_unit(MIXES[0], "SC-MPKI")
        assert unit_digest("fig7", unit) == unit_digest("fig7", unit)
        assert unit_digest("fig7", unit) != unit_digest("fig8", unit)

    def test_unit_label_is_compact(self):
        label = unit_label(cmp_unit(MIXES[0], "SC-MPKI"))
        assert "SC-MPKI" in label
        assert len(label) < 120
