"""Cross-tier validation: measured phase profiles vs analytic targets.

The interval tier runs on analytic (paper-calibrated) profiles; the
detailed tier measures the same quantities from real instruction
streams.  These tests pin the two views together on the behaviours the
reproduction depends on.
"""

import pytest

from repro.characterize import analytic_model, measure_model
from repro.workloads import get_profile

#: Representative pairs: (highly memoizable, unmemoizable) and
#: (HPD-tight, LPD-loose).
SAMPLE = ("hmmer", "astar", "libquantum", "gobmk")


@pytest.fixture(scope="module")
def measured():
    return {
        name: measure_model(name, instructions_per_phase=8_000)
        for name in SAMPLE
    }


def weighted_memo(model):
    return sum(p.memoizable * p.weight for p in model.phases)


def weighted_ratio(model):
    return model.mean_ipc_ino / model.mean_ipc_ooo


class TestCrossTierAgreement:
    def test_memoizability_ordering_agrees(self, measured):
        analytic = {n: analytic_model(n) for n in SAMPLE}
        for better, worse in [("hmmer", "astar"),
                              ("libquantum", "gobmk")]:
            assert weighted_memo(measured[better]) > \
                weighted_memo(measured[worse])
            assert weighted_memo(analytic[better]) > \
                weighted_memo(analytic[worse])

    def test_ratio_ordering_agrees(self, measured):
        # HPD benchmarks have lower InO:OoO ratios on both tiers.
        assert weighted_ratio(measured["hmmer"]) < \
            weighted_ratio(measured["gobmk"])
        assert weighted_ratio(analytic_model("hmmer")) < \
            weighted_ratio(analytic_model("gobmk"))

    def test_measured_memoizable_magnitude(self, measured):
        # Star memoizers measure high; astar measures low — the same
        # split the analytic targets encode.
        assert weighted_memo(measured["hmmer"]) > 0.7
        assert weighted_memo(measured["astar"]) < 0.4

    def test_phase_structure_matches_profile(self, measured):
        for name in SAMPLE:
            prof = get_profile(name)
            assert len(measured[name].phases) == prof.phase_count
