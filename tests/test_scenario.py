"""Tests for the scenario layer: schedules, lifecycle, metrics.

Covers the Scenario model (shapes, determinism, the degenerate
WorkloadMix embedding), the LifecyclePhase engine contract (mid-run
admission/retirement, byte-identity of event-free runs), and the
scenario-level metrics helpers.
"""

import json

import pytest

from repro.cmp.config import ClusterConfig
from repro.cmp.system import CMPSystem
from repro.engine import (
    AnalyticBackend,
    ArbitrationPhase,
    EnergyPhase,
    ExecutionPhase,
    IntervalEngine,
    LifecyclePhase,
    MigrationPhase,
)
from repro.engine.state import AppState
from repro.metrics import (
    percentile,
    sla_attainment,
    spike_throughput,
    tail_summary,
)
from repro.runner.units import ARBITRATORS, app_model
from repro.telemetry import MemorySink, Telemetry
from repro.workloads import standard_mixes
from repro.workloads.scenario import (
    AppArrival,
    Scenario,
    SHAPES,
    make_scenario,
)


class TestScenarioModel:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_shapes_build_and_are_seed_deterministic(self, shape):
        a = make_scenario(shape, n_apps=12, duration=200, seed=5)
        b = make_scenario(shape, n_apps=12, duration=200, seed=5)
        assert a.to_dict() == b.to_dict()
        assert len(a.arrivals) == 12
        assert not a.is_static
        assert all(0 <= arr.arrive < 200 for arr in a.arrivals)

    def test_different_seeds_differ(self):
        a = make_scenario("bursty", n_apps=16, duration=300, seed=1)
        b = make_scenario("bursty", n_apps=16, duration=300, seed=2)
        assert a.to_dict() != b.to_dict()

    def test_round_trips_through_dict(self):
        scenario = make_scenario("diurnal", n_apps=6, duration=100, seed=9)
        clone = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict())))
        assert clone == scenario

    def test_degenerate_from_mix_is_static(self):
        mix = standard_mixes(4, seed=2017)[0]
        scenario = mix.as_scenario()
        assert scenario.is_static
        assert scenario.duration == 0
        assert scenario.benchmarks == tuple(mix)
        assert all(a.arrive == 0 and a.depart is None
                   for a in scenario.arrivals)

    def test_population_counts_residents(self):
        scenario = Scenario(
            name="s", shape="steady", duration=10,
            arrivals=(
                AppArrival(uid="a", benchmark="bzip2", arrive=0, depart=5),
                AppArrival(uid="b", benchmark="mcf", arrive=3),
            ))
        assert scenario.population(0) == 1
        assert scenario.population(4) == 2
        # depart=5 means NOT resident at interval 5.
        assert scenario.population(5) == 1
        assert scenario.peak_population() == 2

    def test_duplicate_uids_rejected(self):
        with pytest.raises(ValueError, match="uid"):
            Scenario(
                name="s", shape="steady", duration=10,
                arrivals=(
                    AppArrival(uid="a", benchmark="bzip2", arrive=0),
                    AppArrival(uid="a", benchmark="mcf", arrive=1),
                ))

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            make_scenario("chaotic", n_apps=4, duration=100)

    def test_queued_property_measures_delay(self):
        arrival = AppArrival(uid="a", benchmark="mcf", arrive=7,
                             requested=3)
        assert arrival.queued == 4


def _pipeline(arbitrator, lifecycle):
    from repro.energy.model import CoreEnergyModel

    return [
        lifecycle,
        ArbitrationPhase(arbitrator),
        MigrationPhase(),
        ExecutionPhase(),
        EnergyPhase(CoreEnergyModel()),
    ]


class TestLifecyclePhase:
    def _engine(self, names, pending, *, n_consumers=8, announce=None,
                telemetry=None, on_retire=None):
        config = ClusterConfig(n_consumers=n_consumers)
        apps = [AppState(model=app_model(n), uid=f"{n}@init")
                for n in names]
        lifecycle = LifecyclePhase(
            pending, announce=announce if announce is not None else apps,
            on_retire=on_retire)
        engine = IntervalEngine(
            config, apps, _pipeline(ARBITRATORS["SC-MPKI"](), lifecycle),
            telemetry=telemetry)
        return engine, apps

    def test_mid_run_admission_grows_population(self):
        newcomer = AppState(model=app_model("mcf"), uid="mcf@late")
        engine, apps = self._engine(
            ["bzip2", "gromacs"], {5: [newcomer]})
        ctx = engine.run(max_intervals=10, stop_when_complete=False)
        assert len(apps) == 3
        assert newcomer.arrived_interval == 5
        assert len(ctx.ooo_share) == 3
        assert newcomer.t_total > 0  # it actually executed

    def test_departure_shrinks_population_and_calls_hook(self):
        retired = []
        engine, apps = self._engine(
            ["bzip2", "gromacs"], {},
            on_retire=lambda app, ctx: retired.append(
                (app.display_name, ctx.index)))
        apps[0].depart_interval = 4
        engine.run(max_intervals=10, stop_when_complete=False)
        assert [a.display_name for a in apps] == ["gromacs@init"]
        assert retired == [("bzip2@init", 4)]

    def test_departure_frees_slot_for_same_interval_arrival(self):
        newcomer = AppState(model=app_model("mcf"), uid="mcf@swap")
        engine, apps = self._engine(
            ["bzip2", "gromacs"], {4: [newcomer]}, n_consumers=2)
        apps[0].depart_interval = 4
        engine.run(max_intervals=8, stop_when_complete=False)
        assert [a.display_name for a in apps] == [
            "gromacs@init", "mcf@swap"]

    def test_emits_typed_lifecycle_records(self):
        telemetry = Telemetry()
        sink = telemetry.attach(MemorySink(kinds={"lifecycle"}))
        newcomer = AppState(model=app_model("mcf"), uid="mcf@late")
        engine, apps = self._engine(
            ["bzip2"], {3: [newcomer]}, telemetry=telemetry)
        apps[0].depart_interval = 6
        engine.run(max_intervals=10, stop_when_complete=False)
        events = [(e.event, e.app, e.interval) for e in sink.events]
        assert events == [
            ("arrive", "bzip2@init", 0),
            ("arrive", "mcf@late", 3),
            ("depart", "bzip2@init", 6),
        ]
        depart = sink.events[-1]
        assert depart.residency_intervals == 6
        assert telemetry.counters["lifecycle.arrivals"] == 2
        assert telemetry.counters["lifecycle.departures"] == 1

    def test_event_free_run_matches_plain_pipeline_bitwise(self):
        # A LifecyclePhase with an empty schedule must not perturb the
        # simulation at all: same apps, same results, bit for bit.
        mix = standard_mixes(6, seed=2017)[3]
        config = ClusterConfig(n_consumers=6)

        def run(with_lifecycle):
            apps = [AppState(model=app_model(n)) for n in mix]
            phases = _pipeline(ARBITRATORS["SC-MPKI"](),
                               LifecyclePhase({}, announce=[]))
            if not with_lifecycle:
                phases = phases[1:]
            engine = IntervalEngine(config, apps, phases)
            ctx = engine.run(max_intervals=400)
            return [(a.instr_done, a.completions, a.energy_pj,
                     a.ooo_intervals, a.sc_coverage) for a in apps]

        assert run(True) == run(False)

    def test_vector_backend_repopulates_after_membership_change(self):
        # Wide cluster so the vectorized kernel is active; admitting
        # mid-run must rebuild its arrays without corrupting state.
        names = [m for m in standard_mixes(12, seed=2017)[0]]
        config = ClusterConfig(n_consumers=13)
        apps = [AppState(model=app_model(n), uid=f"{n}@{i}")
                for i, n in enumerate(names)]
        newcomer = AppState(model=app_model("mcf"), uid="mcf@late")
        lifecycle = LifecyclePhase({7: [newcomer]}, announce=[])
        from repro.cmp.migration import MigrationCostModel

        backend = AnalyticBackend(MigrationCostModel(config),
                                  vectorize=True)
        engine = IntervalEngine(
            config, apps, _pipeline(ARBITRATORS["SC-MPKI"](), lifecycle),
            backend=backend)
        engine.run(max_intervals=20, stop_when_complete=False)
        assert len(apps) == 13
        assert newcomer.t_total > 0
        assert all(a.t_total > 0 for a in apps)


class TestDegenerateScenario:
    def test_degenerate_scenario_reproduces_cmp_result_bitwise(self):
        from repro.cluster import run_cluster_scenario

        mix = standard_mixes(8, seed=2017)[5]
        result = run_cluster_scenario(mix.as_scenario(),
                                      arbitrator="SC-MPKI")
        base = CMPSystem(
            ClusterConfig(n_consumers=8),
            [app_model(b) for b in mix],
            ARBITRATORS["SC-MPKI"](),
        ).run()
        assert result.cmp is not None
        for field in ("config_name", "arbitrator_name", "intervals",
                      "total_cycles", "app_names", "speedups",
                      "energy_pj", "ooo_active_fraction",
                      "ooo_share_per_app", "migrations",
                      "migration_cost_cycles", "migration_frequency"):
            assert getattr(result.cmp, field) == getattr(base, field), field


class TestScenarioMetrics:
    def test_percentile_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q)))

    def test_percentile_edge_cases(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_tail_summary_keys(self):
        summary = tail_summary([1.0, 2.0, 3.0])
        assert set(summary) == {"p50", "p95", "p99"}
        assert summary["p50"] == 2.0

    def test_sla_attainment(self):
        assert sla_attainment([0.9, 0.4, 0.6], 0.5) == pytest.approx(2 / 3)
        assert sla_attainment([], 0.5) == 1.0
        assert sla_attainment([0.5], 0.5) == 1.0  # target is inclusive

    def test_spike_throughput_regimes(self):
        population = [0, 1, 1, 1, 5, 5]
        throughput = [0.0, 2.0, 2.0, 2.0, 1.0, 1.0]
        out = spike_throughput(population, throughput, quantile=80.0)
        assert out["spike"] == pytest.approx(1.0)
        assert out["overall"] == pytest.approx(8.0 / 5.0)
        assert out["ratio"] == pytest.approx(1.0 / 1.6)

    def test_spike_throughput_empty_and_mismatch(self):
        assert spike_throughput([], []) == {
            "overall": 0.0, "spike": 0.0, "ratio": 1.0}
        with pytest.raises(ValueError):
            spike_throughput([1], [1.0, 2.0])
