"""Conformance suite: every registered backend under one contract.

The registry promises that any :class:`~repro.engine.registry
.BackendInfo` builds a bundle the *unchanged* four-phase
:class:`~repro.engine.loop.IntervalEngine` can drive.  These tests run
that contract against the whole roster parametrically — a newly
registered backend gets the full battery for free — plus the
matrix-experiment pieces that ride on it (pairwise divergence, the
fig8-style core-model energy ordering, the load-delay-tracking issue
policy).
"""

import pytest

from repro.arbiter import SCMPKIArbitrator
from repro.energy import CoreEnergyModel
from repro.engine import (
    ArbitrationPhase,
    EnergyPhase,
    ExecutionPhase,
    IntervalEngine,
    MigrationPhase,
    MigrationTicket,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.registry import BackendSpec
from repro.telemetry import Telemetry

#: Small spec shared by every conformance run: big enough for real
#: dynamics, small enough to keep the parametric battery fast.
SPEC = BackendSpec(benchmarks=("bzip2", "astar"),
                   slice_instructions=1_500, sc_capacity=4 * 1024)


def build_engine(name, spec=SPEC, telemetry=None):
    bundle = get_backend(name).build(spec)
    engine = IntervalEngine(
        bundle.config, bundle.apps,
        [
            ArbitrationPhase(SCMPKIArbitrator()),
            MigrationPhase(),
            ExecutionPhase(),
            EnergyPhase(CoreEnergyModel()),
        ],
        backend=bundle.backend, telemetry=telemetry or Telemetry(),
    )
    return bundle, engine


def run_leg(name, intervals=6):
    bundle, engine = build_engine(name)
    budget = 200 if bundle.tier == "interval" else intervals
    ctx = engine.run(max_intervals=budget)
    return bundle, ctx


def state_fingerprint(apps):
    """The externally observable per-app outcome of a run."""
    return [
        (a.model.name, a.on_ooo, a.t_ooo, a.t_total,
         round(a.energy_pj, 6),
         getattr(a, "instructions", a.instr_done))
        for a in apps
    ]


class TestRegistry:
    def test_roster_contains_builtins(self):
        names = backend_names()
        for expected in ("analytic", "detailed", "cgooo", "ldt"):
            assert expected in names

    def test_unknown_name_is_roster_valueerror(self):
        with pytest.raises(ValueError, match="analytic.*detailed"):
            get_backend("no-such-backend")

    def test_list_backends_sorted_and_described(self):
        infos = list_backends()
        assert [i.name for i in infos] == sorted(i.name for i in infos)
        assert all(i.description for i in infos)
        assert all(i.tier in ("interval", "cycle") for i in infos)

    def test_register_replaces_and_restores(self):
        original = get_backend("detailed")
        marker = lambda spec: original.factory(spec)  # noqa: E731
        try:
            info = register_backend("detailed", marker, tier="cycle",
                                    description="shadowed")
            assert get_backend("detailed") is info
            assert get_backend("detailed").description == "shadowed"
        finally:
            register_backend("detailed", original.factory,
                             tier=original.tier,
                             description=original.description)
        assert get_backend("detailed").description == original.description

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            register_backend("broken", lambda spec: None, tier="nope")


class TestBackendConformance:
    @pytest.mark.parametrize("name", backend_names())
    def test_bundle_shape(self, name):
        bundle = get_backend(name).build(SPEC)
        assert bundle.name == name
        assert bundle.tier in ("interval", "cycle")
        assert len(bundle.apps) == len(SPEC.benchmarks)
        assert [a.model.name for a in bundle.apps] == list(SPEC.benchmarks)
        assert bundle.config.n_consumers == len(SPEC.benchmarks)
        # Fresh apps start on consumer cores.
        assert not any(a.on_ooo for a in bundle.apps)

    @pytest.mark.parametrize("name", backend_names())
    def test_views_contract(self, name):
        bundle, engine = build_engine(name)
        ctx = engine.run(max_intervals=2)
        views = bundle.backend.views(ctx)
        batch = bundle.backend.views_batch(ctx)
        assert len(views) == len(bundle.apps)
        assert len(batch.views()) == len(bundle.apps)
        for view, app in zip(views, bundle.apps):
            assert view.name == app.model.name

    @pytest.mark.parametrize("name", backend_names())
    def test_engine_runs_and_advances(self, name):
        bundle, ctx = run_leg(name)
        assert ctx.intervals >= 1
        assert all(o is not None for o in ctx.outcomes)
        for app in bundle.apps:
            assert app.t_total > 0
            assert app.energy_pj > 0
        # Residency accounting never exceeds total time.
        for app in bundle.apps:
            assert 0 <= app.t_ooo <= app.t_total

    @pytest.mark.parametrize("name", backend_names())
    def test_migration_ticket_semantics(self, name):
        """Interval tier charges now; cycle tiers defer to advance."""
        bundle, engine = build_engine(name)
        ctx = engine.run(max_intervals=2)
        app = bundle.apps[0]
        before = bundle.migration.total_migrations
        ticket = bundle.backend.migrate(ctx, 0, to_ooo=not app.on_ooo)
        if bundle.tier == "interval":
            assert isinstance(ticket, MigrationTicket)
            assert ticket.charged <= ctx.interval * 0.9
            assert bundle.migration.total_migrations == before + 1
        else:
            # Deferred: the decision is noted, the physical move (and
            # its accounting) happens when advance reaches the app.
            assert ticket is None
            assert bundle.migration.total_migrations == before
            ctx.mig_cost = [0.0] * len(bundle.apps)
            ctx.outcomes = [None] * len(bundle.apps)
            bundle.backend.advance(ctx, 0)
            assert bundle.migration.total_migrations == before + 1

    @pytest.mark.parametrize("name", backend_names())
    def test_repopulate_keeps_engine_runnable(self, name):
        bundle, engine = build_engine(name)
        ctx = engine.run(max_intervals=2)
        bundle.backend.repopulate(ctx)
        ctx2 = engine.run(max_intervals=1, stop_when_complete=False)
        assert ctx2.intervals == 1

    @pytest.mark.parametrize("name", backend_names())
    def test_deterministic_under_fixed_spec(self, name):
        _, ctx_a = run_leg(name)
        bundle_b, ctx_b = run_leg(name)
        assert state_fingerprint(ctx_a.apps) == state_fingerprint(
            bundle_b.apps)
        assert ctx_a.intervals == ctx_b.intervals

    @pytest.mark.parametrize("name", backend_names())
    def test_finalize_ran_through_engine(self, name):
        """engine.run calls finalize; SC counters must be folded."""
        tele = Telemetry()
        bundle, engine = build_engine(name, telemetry=tele)
        engine.run(max_intervals=4 if bundle.tier == "cycle" else 200)
        if bundle.tier == "cycle":
            counts = dict(tele.counters)
            assert any(key.startswith("sc.") for key in counts), counts


class TestBackendMatrixExperiment:
    def test_divergence_rows(self):
        from repro.experiments.backend_matrix import _divergence

        a = {"backend": "x", "stp": 0.5,
             "ooo_share": {"bzip2": 0.6, "astar": 0.1}}
        b = {"backend": "y", "stp": 0.4,
             "ooo_share": {"bzip2": 0.2, "astar": 0.3}}
        row = _divergence(a, b)
        assert row["pair"] == ("x", "y")
        assert row["d_stp"] == pytest.approx(0.1)
        assert row["d_share_memo"] == pytest.approx(0.4)
        assert row["agree_preference"] is False

    def test_run_validates_backend_names(self):
        from repro.experiments import backend_matrix

        with pytest.raises(ValueError, match="unknown backend"):
            backend_matrix.run(backends=("analytic", "typo"))

    def test_matrix_over_two_backends(self):
        from repro.experiments import backend_matrix

        result = backend_matrix.run(
            backends=("analytic", "detailed"), intervals=10,
            slice_instructions=1_500, max_intervals=200,
            energy_instructions=3_000)
        assert result["backends"] == ["analytic", "detailed"]
        assert len(result["legs"]) == 2
        assert len(result["pairwise"]) == 1
        tiers = {leg["backend"]: leg["tier"] for leg in result["legs"]}
        assert tiers == {"analytic": "interval", "detailed": "cycle"}
        assert {row["model"] for row in result["energy"]} == {
            "ino", "ldt", "cgooo", "ooo"}


class TestEnergyOrdering:
    def test_cgooo_lands_between_ino_and_ooo(self):
        """The fig8-style acceptance check: InO < CG-OoO < OoO EPI."""
        from repro.experiments.backend_matrix import energy_table

        rows = {row["model"]: row for row in energy_table(6_000)}
        assert (rows["ino"]["epi_pj"] < rows["cgooo"]["epi_pj"]
                < rows["ooo"]["epi_pj"])
        # And the performance side of the story: CG-OoO recovers a
        # chunk of the OoO's IPC advantage over the InO.
        assert (rows["ino"]["ipc"] < rows["cgooo"]["ipc"]
                < rows["ooo"]["ipc"])


class TestLoadDelayTracking:
    def test_ldt_beats_stall_on_memory_bound_stream(self):
        from repro.cores import InOrderCore, LDT_PARAMS
        from repro.memory import MemoryHierarchy
        from repro.workloads import make_benchmark

        n = 12_000
        stall = InOrderCore(MemoryHierarchy().core_view(0)).run(
            make_benchmark("mcf", seed=2).stream(), n)
        ldt = InOrderCore(MemoryHierarchy().core_view(0),
                          params=LDT_PARAMS).run(
            make_benchmark("mcf", seed=2).stream(), n)
        assert ldt.ipc > stall.ipc

    def test_default_stall_policy_unchanged(self):
        """issue_policy='stall' must be the byte-identical old path."""
        import dataclasses

        from repro.cores import INO_PARAMS, InOrderCore
        from repro.memory import MemoryHierarchy
        from repro.workloads import make_benchmark

        explicit = dataclasses.replace(INO_PARAMS, issue_policy="stall")
        n = 8_000
        a = InOrderCore(MemoryHierarchy().core_view(0)).run(
            make_benchmark("bzip2", seed=3).stream(), n)
        b = InOrderCore(MemoryHierarchy().core_view(0),
                        params=explicit).run(
            make_benchmark("bzip2", seed=3).stream(), n)
        assert a.cycles == b.cycles
        assert a.energy_events == b.energy_events


class TestMigrationCostModels:
    def test_roster_and_unknown_name(self):
        from repro.cmp.migration import (
            MIGRATION_COST_MODELS,
            make_cost_model,
        )
        from repro.cmp import ClusterConfig

        assert set(MIGRATION_COST_MODELS) == {"l1-flush",
                                              "state-transfer"}
        config = ClusterConfig(n_consumers=2, n_producers=1,
                               migration_cost_model="bogus")
        with pytest.raises(ValueError, match="l1-flush"):
            make_cost_model(config)

    def test_state_transfer_scales_with_sc_bytes(self):
        from repro.cmp import ClusterConfig
        from repro.cmp.migration import make_cost_model

        config = ClusterConfig(
            n_consumers=2, n_producers=1,
            migration_cost_model="state-transfer")
        model = make_cost_model(config)
        small = model.migrate("bzip2", now_cycles=0, interval_index=0,
                              to_ooo=True, sc_bytes=0)
        large = model.migrate("bzip2", now_cycles=10_000,
                              interval_index=1, to_ooo=False,
                              sc_bytes=64 * 1024)
        assert small.l1_warmup_cycles < large.l1_warmup_cycles
        # Saturates at the flat L1-flush price, never exceeds it.
        flat = ClusterConfig(n_consumers=2, n_producers=1)
        flat_model = make_cost_model(flat)
        flat_event = flat_model.migrate(
            "bzip2", now_cycles=0, interval_index=0, to_ooo=True,
            sc_bytes=64 * 1024)
        assert large.l1_warmup_cycles <= flat_event.l1_warmup_cycles

    def test_spec_threads_cost_model_into_bundle(self):
        from repro.cmp.migration import StateTransferMigrationModel

        spec = BackendSpec(benchmarks=("bzip2", "astar"),
                           slice_instructions=1_000,
                           migration_cost_model="state-transfer")
        bundle = get_backend("detailed").build(spec)
        assert isinstance(bundle.migration, StateTransferMigrationModel)


class TestCacheKeying:
    def test_backend_selection_in_key_material(self):
        from repro.runner import ResultCache, call_unit

        unit = call_unit("x:y", 1)
        base = ResultCache("/tmp/nonexistent-cache")
        keyed = ResultCache("/tmp/nonexistent-cache",
                            core_backend="cgooo",
                            cost_model="state-transfer")
        assert base.key_material("e", unit) != keyed.key_material(
            "e", unit)
        assert '"core_backend":"cgooo"' in keyed.key_material("e", unit)
        assert '"cost_model":"state-transfer"' in keyed.key_material(
            "e", unit)

    def test_cache_config_validates_backend(self):
        from repro.config import CacheConfig

        with pytest.raises(ValueError, match="unknown backend"):
            CacheConfig(backend="typo").result_cache()
        cache = CacheConfig(backend="cgooo",
                            migration_cost_model="state-transfer",
                            ).result_cache()
        assert cache.core_backend == "cgooo"
        assert cache.cost_model == "state-transfer"
