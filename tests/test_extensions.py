"""Tests for the extension features: software arbitration and
multithreaded schedule broadcast (paper sections 3.2.4 and 6)."""

import pytest

from repro.arbiter import SCMPKIArbitrator
from repro.arbiter.base import AppView
from repro.arbiter.software import SoftwareArbitrator
from repro.characterize import analytic_model
from repro.cmp import ClusterConfig
from repro.cmp.multithreaded import MultithreadedMirage
from repro.experiments import multithreaded, software_arbiter


def view(index, mpki_ino=2.0):
    return AppView(index=index, name=f"a{index}", ipc_current=0.5,
                   ipc_ooo_last=1.0, sc_mpki_ino=mpki_ino,
                   sc_mpki_ooo=2.0, intervals_since_ooo=50, util=0.1,
                   on_ooo=False)


class TestSoftwareArbitrator:
    def test_holds_decision_between_reactions(self):
        sw = SoftwareArbitrator(SCMPKIArbitrator(), reaction_intervals=5)
        stale = [view(0, mpki_ino=20.0), view(1)]
        first = sw.pick(stale, interval_index=0)
        # Change the world: the inner arbitrator would now pick 1.
        changed = [view(0), view(1, mpki_ino=20.0)]
        held = sw.pick(changed, interval_index=2)
        assert held == first
        # After the reaction period, the decision updates.
        updated = sw.pick(changed, interval_index=5)
        assert updated == [1]

    def test_granularity_one_is_transparent(self):
        inner = SCMPKIArbitrator()
        sw = SoftwareArbitrator(SCMPKIArbitrator(), reaction_intervals=1)
        views = [view(0, mpki_ino=20.0), view(1)]
        assert sw.pick(views, interval_index=0) == \
            inner.pick(views, interval_index=0)
        assert sw.pick(views, interval_index=1) == \
            inner.pick(views, interval_index=1)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            SoftwareArbitrator(SCMPKIArbitrator(), reaction_intervals=0)

    def test_reset(self):
        sw = SoftwareArbitrator(SCMPKIArbitrator(), reaction_intervals=9)
        sw.pick([view(0, mpki_ino=20.0)], interval_index=0)
        sw.reset()
        assert sw._decided_at is None

    def test_coarser_reaction_loses_throughput(self):
        result = software_arbiter.run(n_mixes=2)
        stps = [r["stp"] for r in result["rows"]]
        assert stps[0] > stps[-1]


class TestMultithreadedMirage:
    def _run(self, broadcast, name="hmmer", n=4):
        config = ClusterConfig(n_consumers=n, n_producers=1, mirage=True)
        return MultithreadedMirage(
            config, analytic_model(name), broadcast=broadcast).run()

    def test_requires_mirage_consumers(self):
        config = ClusterConfig(n_consumers=4, n_producers=1,
                               mirage=False)
        with pytest.raises(ValueError):
            MultithreadedMirage(config, analytic_model("hmmer"))

    def test_all_threads_complete(self):
        result = self._run(broadcast=True)
        assert result.n_threads == 4
        assert all(0 < s <= 1.0 for s in result.thread_speedups)

    def test_broadcast_reduces_ooo_time(self):
        with_bc = self._run(broadcast=True)
        without = self._run(broadcast=False)
        assert with_bc.ooo_active_fraction < without.ooo_active_fraction

    def test_broadcast_keeps_throughput(self):
        with_bc = self._run(broadcast=True)
        without = self._run(broadcast=False)
        assert with_bc.stp >= without.stp - 0.03

    def test_experiment_driver(self):
        result = multithreaded.run(n_threads=4)
        for row in result["rows"]:
            assert row["ooo_broadcast"] <= row["ooo_private"] + 0.02
            assert row["stp_broadcast"] >= row["stp_private"] - 0.05


class TestMultithreadedEnginePath:
    """The multithreaded cluster is now the standard engine pipeline
    plus a custom BroadcastPhase — exercise that seam directly."""

    def _cluster(self, broadcast=True, n=4):
        config = ClusterConfig(n_consumers=n, n_producers=1, mirage=True)
        return MultithreadedMirage(
            config, analytic_model("hmmer"), broadcast=broadcast)

    def test_pipeline_shape(self):
        with_bc = self._cluster(broadcast=True)
        assert [p.name for p in with_bc.phases] == [
            "arbitration", "migration", "execution", "energy",
            "broadcast"]
        without = self._cluster(broadcast=False)
        assert [p.name for p in without.phases] == [
            "arbitration", "migration", "execution", "energy"]

    def test_runs_on_analytic_backend(self):
        from repro.engine import AnalyticBackend

        cluster = self._cluster()
        assert isinstance(cluster.engine.backend, AnalyticBackend)
        assert cluster.engine.backend.migration is cluster.migration

    def test_broadcast_phase_profiled_and_counted(self):
        cluster = self._cluster(broadcast=True)
        result = cluster.run()
        profiler = cluster.telemetry.profiler
        assert "broadcast" in profiler.seconds
        assert profiler.calls["broadcast"] == result.intervals
        # The broadcasts actually happened and moved bus bytes.
        assert cluster.telemetry.counters["broadcast.transfers"] > 0

    def test_engine_counters_cover_migrations(self):
        cluster = self._cluster()
        cluster.run()
        counters = cluster.telemetry.counters
        assert counters["migration.count"] \
            == cluster.migration.total_migrations > 0
        assert counters["arbitration.granted"] > 0

    def test_memoize_phases_match_engine_bookkeeping(self):
        cluster = self._cluster()
        result = cluster.run()
        assert result.memoize_phases == round(
            result.ooo_active_fraction * result.intervals)
