"""Unit tests for trace detection, the Schedule Cache and the recorder."""

import pytest

from repro.isa import Instruction, OpClass
from repro.schedule import (
    Schedule,
    ScheduleCache,
    ScheduleRecorder,
    Trace,
    TraceBuilder,
)
from repro.schedule.recorder import MAX_TRACE_LEN, MIN_TRACE_LEN


def loop_iteration(start_pc=0x1000, body=10, seq=0, taken=True,
                   internal=()):
    """One loop iteration: body instrs + backward branch (included)."""
    insns = []
    pc = start_pc
    for i in range(body):
        if i in internal:
            insns.append(Instruction(
                seq=seq, pc=pc, opclass=OpClass.BRANCH, is_branch=True,
                taken=False, target=pc + 16))
        else:
            insns.append(Instruction(
                seq=seq, pc=pc, opclass=OpClass.IALU, dst=4, srcs=(1,)))
        seq += 1
        pc += 4
    insns.append(Instruction(
        seq=seq, pc=pc, opclass=OpClass.BRANCH, is_branch=True,
        taken=taken, target=start_pc))
    return insns


class TestTraceBuilder:
    def test_segments_on_backward_branch(self):
        builder = TraceBuilder()
        done = None
        for insn in loop_iteration():
            done = builder.feed(insn) or done
        assert done is not None
        assert len(done) == 11
        assert done.start_pc == 0x1000

    def test_multiple_iterations_same_key(self):
        builder = TraceBuilder()
        traces = []
        for k in range(3):
            for insn in loop_iteration(seq=k * 11):
                t = builder.feed(insn)
                if t:
                    traces.append(t)
        assert len(traces) == 3
        assert len({t.key for t in traces}) == 1

    def test_different_internal_path_different_key(self):
        builder = TraceBuilder()
        keys = []
        for internal in ((), (3,)):
            for insn in loop_iteration(internal=internal):
                t = builder.feed(insn)
                if t:
                    keys.append(t.key)
        assert keys[0] != keys[1]

    def test_flush_returns_partial_trace(self):
        builder = TraceBuilder()
        for insn in loop_iteration()[:5]:
            builder.feed(insn)
        tail = builder.flush()
        assert tail is not None and len(tail) == 5
        assert builder.flush() is None

    def test_trace_storage_bytes(self):
        trace = Trace(start_pc=0, path_hash=0,
                      instructions=loop_iteration())
        assert trace.storage_bytes() == 4 * 11 + 20

    def test_trace_mem_and_branch_counters(self):
        insns = [
            Instruction(seq=0, pc=0, opclass=OpClass.LOAD, dst=4,
                        srcs=(1,), mem_addr=0x80),
            Instruction(seq=1, pc=4, opclass=OpClass.BRANCH,
                        is_branch=True, taken=True, target=0),
        ]
        trace = Trace(start_pc=0, path_hash=0, instructions=insns)
        assert trace.num_mem_ops == 1
        assert trace.num_branches == 1


def sched(pc=0x1000, path=1, n=10):
    return Schedule(start_pc=pc, path_hash=path,
                    issue_order=tuple(range(n)))


class TestScheduleCache:
    def test_miss_then_hit(self):
        sc = ScheduleCache()
        assert sc.lookup(0x1000, 1) is None
        sc.insert(sched())
        assert sc.lookup(0x1000, 1) is not None
        assert sc.stats.misses == 1 and sc.stats.hits == 1

    def test_path_mismatch_is_miss(self):
        sc = ScheduleCache()
        sc.insert(sched(path=1))
        assert sc.lookup(0x1000, 2) is None
        assert sc.has_pc(0x1000)

    def test_path_associativity(self):
        sc = ScheduleCache(paths_per_pc=2)
        sc.insert(sched(path=1))
        sc.insert(sched(path=2))
        sc.insert(sched(path=3))   # evicts LRU path 1
        assert sc.probe(0x1000, 1) is None
        assert sc.probe(0x1000, 2) is not None
        assert sc.probe(0x1000, 3) is not None

    def test_capacity_eviction_lru(self):
        # Each schedule is 4*10+20 = 60 B; capacity for 2.
        sc = ScheduleCache(capacity_bytes=120)
        sc.insert(sched(pc=0x1000))
        sc.insert(sched(pc=0x2000))
        sc.lookup(0x1000, 1)       # touch 0x1000
        sc.insert(sched(pc=0x3000))
        assert sc.probe(0x2000, 1) is None   # LRU victim
        assert sc.probe(0x1000, 1) is not None
        assert sc.used_bytes <= 120

    def test_unmemoizable_evicted_first(self):
        sc = ScheduleCache(capacity_bytes=120)
        sc.insert(sched(pc=0x1000))
        sc.insert(sched(pc=0x2000))
        sc.lookup(0x2000, 1)
        sc.lookup(0x1000, 1)       # 0x1000 is MRU
        sc.mark_unmemoizable(0x1000)
        sc.insert(sched(pc=0x3000))
        assert not sc.has_pc(0x1000)   # evicted despite recency

    def test_unmemoizable_lookup_misses(self):
        sc = ScheduleCache()
        sc.insert(sched())
        sc.mark_unmemoizable(0x1000)
        assert sc.lookup(0x1000, 1) is None
        assert not sc.has_pc(0x1000)

    def test_oversized_schedule_rejected(self):
        sc = ScheduleCache(capacity_bytes=64)
        assert sc.insert(sched(n=100)) is False

    def test_infinite_capacity(self):
        sc = ScheduleCache(None)
        for i in range(500):
            assert sc.insert(sched(pc=0x1000 + 0x100 * i))
        assert sc.num_entries == 500

    def test_reinsert_replaces(self):
        sc = ScheduleCache()
        sc.insert(sched(n=10))
        sc.insert(Schedule(start_pc=0x1000, path_hash=1,
                           issue_order=(1, 0)))
        assert sc.lookup(0x1000, 1).num_instructions == 2
        assert sc.num_entries == 1

    def test_contents_roundtrip(self):
        sc1 = ScheduleCache()
        sc1.insert(sched(pc=0x1000))
        sc1.insert(sched(pc=0x2000))
        sc2 = ScheduleCache()
        sc2.load_contents(sc1.contents())
        assert sc2.num_entries == 2
        assert sc2.stats.writes == 0   # bulk transfer, not demand

    def test_invalidate_all(self):
        sc = ScheduleCache()
        sc.insert(sched())
        sc.invalidate_all()
        assert sc.num_entries == 0 and sc.used_bytes == 0

    def test_mpki(self):
        sc = ScheduleCache()
        sc.lookup(0x1, 0)
        sc.lookup(0x2, 0)
        assert sc.stats.mpki(1000) == pytest.approx(2.0)


def make_trace(start_pc=0x1000, path=7, n=20):
    insns = [
        Instruction(seq=i, pc=start_pc + 4 * i, opclass=OpClass.IALU,
                    dst=4, srcs=(1,))
        for i in range(n)
    ]
    return Trace(start_pc=start_pc, path_hash=path, instructions=insns)


class TestScheduleRecorder:
    def test_memoizes_after_confidence(self):
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc, confidence_threshold=2)
        order = tuple(range(20))
        rec.observe(make_trace(), order, 10)
        assert sc.num_entries == 0   # first sighting: streak 1
        rec.observe(make_trace(), order, 10)
        assert sc.num_entries == 1   # second match reaches threshold

    def test_changing_schedule_resets_streak(self):
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc, confidence_threshold=2)
        t = make_trace()
        a = tuple(range(20))
        b = tuple(reversed(range(20)))
        for order in (a, b, a, b, a, b):
            rec.observe(make_trace(), order, 10)
        assert sc.num_entries == 0

    def test_short_traces_ignored(self):
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc, confidence_threshold=1)
        tiny = make_trace(n=MIN_TRACE_LEN - 1)
        for _ in range(5):
            rec.observe(tiny, tuple(range(len(tiny))), 5)
        assert sc.num_entries == 0

    def test_huge_traces_ignored(self):
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc, confidence_threshold=1)
        huge = make_trace(n=MAX_TRACE_LEN + 1)
        for _ in range(5):
            rec.observe(huge, tuple(range(len(huge))), 5)
        assert sc.num_entries == 0

    def test_abort_blacklisting(self):
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc, confidence_threshold=2,
                               abort_blacklist_ratio=0.25)
        order = tuple(range(20))
        key = make_trace().key
        for _ in range(8):
            rec.observe(make_trace(), order, 10)
        assert sc.num_entries == 1
        for _ in range(4):
            rec.report_abort(key)
        assert not sc.has_pc(0x1000)

    def test_signature_tolerates_duration_jitter(self):
        t = make_trace()
        order = tuple(range(20))
        s1 = ScheduleRecorder.signature_of(t, order, 40)
        s2 = ScheduleRecorder.signature_of(t, order, 43)
        assert s1 == s2

    def test_memoization_rate(self):
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc, confidence_threshold=2)
        order = tuple(range(20))
        for _ in range(4):
            rec.observe(make_trace(), order, 10)
        assert 0.0 < rec.memoization_rate <= 1.0

    def test_table_lru_bound(self):
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc, table_size=4)
        for i in range(10):
            t = make_trace(start_pc=0x1000 + 0x100 * i)
            rec.observe(t, tuple(range(20)), 10)
        assert len(rec.tables.entries) <= 4
