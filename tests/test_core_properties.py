"""Property-based tests over the core models themselves."""


from hypothesis import given, settings, strategies as st

from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import make_benchmark

BENCH_NAMES = st.sampled_from(["hmmer", "gcc", "mcf", "bzip2",
                               "libquantum", "astar"])


class TestCoreInvariants:
    @given(BENCH_NAMES, st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_ipc_never_exceeds_width(self, name, seed):
        bench = make_benchmark(name, seed=seed)
        for core_cls in (OutOfOrderCore, InOrderCore):
            core = core_cls(MemoryHierarchy().core_view(0))
            result = core.run(bench.stream(), 4_000)
            assert result.ipc <= core.params.width + 1e-9

    @given(BENCH_NAMES, st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_ino_never_beats_ooo(self, name, seed):
        bench = make_benchmark(name, seed=seed)
        r_ooo = OutOfOrderCore(MemoryHierarchy().core_view(0)).run(
            bench.stream(), 6_000)
        r_ino = InOrderCore(MemoryHierarchy().core_view(1)).run(
            bench.stream(), 6_000)
        assert r_ino.ipc <= r_ooo.ipc * 1.05

    @given(BENCH_NAMES)
    @settings(max_examples=6, deadline=None)
    def test_runs_are_deterministic(self, name):
        bench = make_benchmark(name, seed=1)
        runs = [
            OutOfOrderCore(MemoryHierarchy().core_view(0)).run(
                bench.stream(), 4_000).cycles
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @given(BENCH_NAMES, st.integers(0, 2))
    @settings(max_examples=6, deadline=None)
    def test_stats_internally_consistent(self, name, seed):
        bench = make_benchmark(name, seed=seed)
        r = OutOfOrderCore(MemoryHierarchy().core_view(0)).run(
            bench.stream(), 5_000)
        s = r.stats
        assert s.instructions == 5_000
        assert s.mispredicts <= s.branches
        assert s.l1d_misses <= s.loads + s.stores
        assert s.loads + s.stores <= s.instructions

    @given(BENCH_NAMES)
    @settings(max_examples=6, deadline=None)
    def test_oino_trace_accounting(self, name):
        bench = make_benchmark(name, seed=2)
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc)
        OutOfOrderCore(MemoryHierarchy().core_view(0),
                       recorder=rec).run(bench.stream(), 8_000)
        r = OinOCore(MemoryHierarchy().core_view(1), sc).run(
            bench.stream(), 8_000)
        s = r.stats
        assert s.sc_trace_hits + s.sc_trace_misses == s.traces
        assert 0.0 <= s.memoized_fraction <= 1.0
        assert s.trace_aborts <= s.traces

    @given(st.integers(1_000, 6_000))
    @settings(max_examples=6, deadline=None)
    def test_longer_runs_take_longer(self, n):
        bench = make_benchmark("hmmer", seed=1)
        short = OutOfOrderCore(MemoryHierarchy().core_view(0)).run(
            bench.stream(), n)
        long = OutOfOrderCore(MemoryHierarchy().core_view(0)).run(
            bench.stream(), n * 2)
        assert long.cycles > short.cycles
