"""Tests for the command-line entry point."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS


class TestCLI:
    def test_runs_single_experiment(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "Mirage" in out

    def test_quick_flag(self, capsys):
        assert main(["fig6", "--quick"]) == 0

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_all_experiments_are_dispatchable(self):
        # Registry names contain no characters argparse would reject.
        for name in EXPERIMENTS:
            assert " " not in name and name == name.lower()

    def test_export_flag(self, tmp_path, capsys):
        assert main(["fig6", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "fig6.json").exists()
