"""Tests for the command-line entry point."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS


class TestCLI:
    def test_runs_single_experiment(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "Mirage" in out

    def test_quick_flag(self, capsys):
        assert main(["fig6", "--quick"]) == 0

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_all_experiments_are_dispatchable(self):
        # Registry names contain no characters argparse would reject.
        for name in EXPERIMENTS:
            assert " " not in name and name == name.lower()

    def test_export_flag(self, tmp_path, capsys):
        assert main(["fig6", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "fig6.json").exists()

    def test_unknown_experiment_error_names_the_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        err = capsys.readouterr().err
        assert "fig7" in err and "mirage list" in err

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "Figure 7" in out
        assert EXPERIMENTS["fig7"].title in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "tier-validation" in capsys.readouterr().out

    def test_no_experiment_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["fig12", "--jobs", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "[runner]" in cold
        assert any(cache.rglob("*.json"))
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "from cache" in warm
        # The tables (everything but the instrumentation) agree.
        strip = lambda s: [l for l in s.splitlines()
                           if not l.startswith(("[runner]", "---"))]
        assert strip(cold) == strip(warm)

    def test_no_cache_flag_writes_nothing(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["fig12", "--no-cache",
                     "--cache-dir", str(cache)]) == 0
        assert not cache.exists()

    def test_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--jobs", "0"])
