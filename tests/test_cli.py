"""Tests for the command-line entry point."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS, ExperimentParams


class TestCLI:
    def test_runs_single_experiment(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "Mirage" in out

    def test_quick_flag(self, capsys):
        assert main(["fig6", "--quick"]) == 0

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_all_experiments_are_dispatchable(self):
        # Registry names contain no characters argparse would reject.
        for name in EXPERIMENTS:
            assert " " not in name and name == name.lower()

    def test_export_flag(self, tmp_path, capsys):
        assert main(["fig6", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "fig6.json").exists()

    def test_unknown_experiment_error_names_the_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        err = capsys.readouterr().err
        assert "fig7" in err and "mirage list" in err

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "Figure 7" in out
        assert EXPERIMENTS["fig7"].title in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "tier-validation" in capsys.readouterr().out

    def test_no_experiment_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["fig12", "--jobs", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "[runner]" in cold
        assert any(cache.rglob("*.json"))
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "from cache" in warm
        # The tables (everything but the instrumentation) agree.
        strip = lambda s: [l for l in s.splitlines()
                           if not l.startswith(("[runner]", "---"))]
        assert strip(cold) == strip(warm)

    def test_no_cache_flag_writes_nothing(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["fig12", "--no-cache",
                     "--cache-dir", str(cache)]) == 0
        assert not cache.exists()

    def test_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--jobs", "0"])


class TestTraceOption:
    def test_fig5_trace_reproduces_history(self, tmp_path, capsys):
        # The acceptance bar for the telemetry layer: the JSONL trace's
        # interval records must equal the Figure 5 history, float for
        # float, after the JSON round trip.
        from repro.experiments.common import make_system
        from repro.telemetry import read_trace
        from repro.workloads import WorkloadMix

        trace_file = tmp_path / "fig5.jsonl"
        assert main(["fig5", "--quick", "--no-cache",
                     "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert f"-> {trace_file}" in out

        events = read_trace(trace_file)
        kinds = {e.kind for e in events}
        assert {"interval", "arbitration", "migration", "energy",
                "run"} <= kinds

        mix = WorkloadMix(
            name="fig5", category="Random",
            benchmarks=("bzip2", "gamess", "namd", "libquantum"))
        system = make_system(mix, "SC-MPKI", record_history=True)
        system.run(max_intervals=200)  # fig5's --quick interval count
        assert [e for e in events if e.kind == "interval"] \
            == system.history

    def test_trace_file_truncated_per_invocation(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        assert main(["fig5", "--quick", "--no-cache",
                     "--trace", str(trace_file)]) == 0
        first = trace_file.read_bytes()
        assert main(["fig5", "--quick", "--no-cache",
                     "--trace", str(trace_file)]) == 0
        assert trace_file.read_bytes() == first
        capsys.readouterr()

    def test_runner_trace_identical_serial_cached_parallel(self, tmp_path):
        # Same table, same trace bytes, whether the units were executed
        # serially, replayed from cache, or fanned out over processes.
        def run_headline(jobs, cache_dir, trace_file):
            params = ExperimentParams(
                quick=True, n_mixes=2, jobs=jobs, use_cache=True,
                cache_dir=cache_dir, trace=trace_file)
            return EXPERIMENTS["headline"].run(params)

        cache = tmp_path / "cache"
        traces = [tmp_path / f"t{i}.jsonl" for i in range(3)]
        cold = run_headline(1, cache, traces[0])
        warm = run_headline(1, cache, traces[1])
        stats = EXPERIMENTS["headline"].last_runner.stats
        assert stats.cache_hits == stats.total_units > 0
        parallel = run_headline(2, tmp_path / "cache2", traces[2])
        assert cold == warm == parallel
        assert (traces[0].read_bytes() == traces[1].read_bytes()
                == traces[2].read_bytes())
        assert traces[0].stat().st_size > 0


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "fig5.jsonl"
        main(["fig5", "--quick", "--no-cache", "--trace", str(path)])
        capsys.readouterr()
        return path

    def test_summary_and_table(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "interval" in out
        assert "4:1-Mirage under SC-MPKI" in out
        assert "bzip2" in out

    def test_app_filter_and_limit(self, trace_file, capsys):
        assert main(["trace", str(trace_file),
                     "--app", "namd", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "for namd" in out
        table_rows = [line for line in out.splitlines()
                      if line.split()[:2][-1:] == ["namd"]
                      and line.split()[0].isdigit()]
        assert len(table_rows) == 3
        assert "bzip2" not in out

    def test_migration_summary_line(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        summary = [line for line in out.splitlines()
                   if line.startswith("migrations per app:")]
        assert len(summary) == 1
        # Every app that migrated appears as name=count.
        assert "=" in summary[0]

    def test_kind_filter_migration(self, trace_file, capsys):
        assert main(["trace", str(trace_file),
                     "--kind", "migration"]) == 0
        out = capsys.readouterr().out
        assert "migration records" in out
        assert "sc_bytes" in out and "charged" in out
        # The default interval table and run section are suppressed.
        assert "interval records" not in out
        assert "\nrun:" not in out

    def test_kind_filter_arbitration_and_energy(self, trace_file,
                                                capsys):
        assert main(["trace", str(trace_file),
                     "--kind", "arbitration"]) == 0
        out = capsys.readouterr().out
        assert "arbitration records" in out and "chosen" in out
        assert main(["trace", str(trace_file),
                     "--kind", "energy"]) == 0
        out = capsys.readouterr().out
        assert "energy records" in out and "energy_pj" in out

    def test_kind_filter_composes_with_app(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--kind", "migration",
                     "--app", "bzip2"]) == 0
        out = capsys.readouterr().out
        assert "migration records for bzip2" in out
        assert "namd" not in out

    def test_kind_rejected_for_experiments(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--kind", "migration"])

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_trace_needs_a_path(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_path_rejected_for_experiments(self, trace_file):
        with pytest.raises(SystemExit):
            main(["fig6", str(trace_file)])
