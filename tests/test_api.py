"""The stable facade (repro.api) and the one-dataclass cache config.

``repro.api`` is the supported import surface: every ``__all__`` name
must resolve, and :func:`repro.api.run_experiment` must behave like
the CLI.  :class:`repro.config.CacheConfig` collapses the result
cache, the slice memo, and its disk store into one object — the tests
pin that applying it reaches the process-wide switches and that the
legacy ``use_cache``/``cache_dir`` fields still work.
"""

import os

import pytest

from repro import api, simcache
from repro.config import CacheConfig, default_cache_dir
from repro.experiments import ExperimentParams


@pytest.fixture(autouse=True)
def _isolate_cache_switches(monkeypatch):
    """Keep process-wide cache switches out of the other tests."""
    monkeypatch.delenv("MIRAGE_CACHE_DIR", raising=False)
    monkeypatch.delenv(simcache.ENV_VAR, raising=False)
    monkeypatch.delenv(simcache.DISK_ENV_VAR, raising=False)
    monkeypatch.setattr(simcache, "_enabled", None)
    monkeypatch.setattr(simcache, "_disk_enabled", None)


class TestFacade:
    def test_every_export_resolves(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_run_experiment_matches_cli_driver(self):
        result = api.run_experiment("fig6", quick=True)
        assert isinstance(result, dict) and result

    def test_run_experiment_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="fig99"):
            api.run_experiment("fig99")

    def test_run_experiment_threads_cache_config(self, tmp_path):
        cache = CacheConfig(cache_dir=tmp_path / "cache",
                            use_result_cache=True)
        api.run_experiment("fig12", cache=cache)
        assert any((tmp_path / "cache").rglob("*.json"))

    def test_run_experiment_forwards_overrides(self):
        result = api.run_experiment("fig7", quick=True, n_mixes=2)
        assert result["rows"]


class TestCacheConfig:
    def test_defaults_change_nothing(self):
        before = (simcache.enabled(), simcache.disk_enabled())
        CacheConfig().apply()
        assert (simcache.enabled(), simcache.disk_enabled()) == before

    def test_apply_reaches_every_switch(self, tmp_path):
        CacheConfig(cache_dir=tmp_path, sim_cache=False,
                    sim_cache_disk=True).apply()
        assert os.environ["MIRAGE_CACHE_DIR"] == str(tmp_path)
        assert default_cache_dir() == tmp_path
        assert simcache.enabled() is False
        assert simcache.disk_enabled() is True

    def test_from_env_materializes_the_environment(self, monkeypatch):
        monkeypatch.setenv(simcache.ENV_VAR, "0")
        monkeypatch.setenv(simcache.DISK_ENV_VAR, "1")
        cfg = CacheConfig.from_env()
        assert cfg.sim_cache is False
        assert cfg.sim_cache_disk is True

    def test_result_cache_off_means_none(self, tmp_path):
        assert CacheConfig(use_result_cache=False).result_cache() is None
        cache = CacheConfig(cache_dir=tmp_path).result_cache()
        assert cache is not None
        assert cache.root == tmp_path

    def test_experiment_params_fold_legacy_fields(self, tmp_path):
        legacy = ExperimentParams(use_cache=True, cache_dir=tmp_path)
        cfg = legacy.cache_config()
        assert cfg.use_result_cache is True
        assert cfg.cache_dir == tmp_path
        explicit = ExperimentParams(
            use_cache=False, cache=CacheConfig(use_result_cache=True))
        assert explicit.cache_config().use_result_cache is True
