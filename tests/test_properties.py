"""Property-based tests (hypothesis) for core data structures."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.cores.functional_units import SlotPool
from repro.memory import Cache, CacheConfig, SharedBus
from repro.metrics import fairness_index, system_throughput
from repro.schedule import Schedule, ScheduleCache, TraceBuilder
from repro.workloads import make_benchmark
from repro.isa import Instruction, OpClass

addresses = st.integers(min_value=0, max_value=1 << 20)


class TestCacheProperties:
    @given(st.lists(addresses, min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, addrs):
        cache = Cache(CacheConfig(512, 2, 64))
        for a in addrs:
            cache.access(a)
        assert cache.resident_lines <= cache.capacity_lines

    @given(st.lists(addresses, min_size=1, max_size=200))
    def test_repeat_access_hits(self, addrs):
        """Accessing the same address twice in a row always hits."""
        cache = Cache(CacheConfig(1024, 2, 64))
        for a in addrs:
            cache.access(a)
            assert cache.access(a) is True

    @given(st.lists(addresses, min_size=1, max_size=300))
    def test_stats_are_consistent(self, addrs):
        cache = Cache(CacheConfig(512, 2, 64))
        for a in addrs:
            cache.access(a)
        assert cache.stats.hits + cache.stats.misses == \
            cache.stats.accesses
        assert 0.0 <= cache.stats.miss_rate <= 1.0

    @given(st.lists(st.tuples(addresses, st.booleans()),
                    min_size=1, max_size=200))
    def test_flush_leaves_empty(self, ops):
        cache = Cache(CacheConfig(512, 2, 64))
        for addr, write in ops:
            cache.access(addr, write=write)
        cache.flush()
        assert cache.resident_lines == 0


class TestSlotPoolProperties:
    @given(st.integers(1, 4),
           st.lists(st.integers(0, 60), min_size=1, max_size=120))
    def test_per_cycle_capacity_respected(self, capacity, requests):
        pool = SlotPool(capacity)
        usage = {}
        for earliest in requests:
            cycle = pool.earliest_free(earliest)
            pool.reserve(cycle)
            assert cycle >= earliest
            usage[cycle] = usage.get(cycle, 0) + 1
        assert all(n <= capacity for n in usage.values())


class TestBusProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.integers(1, 4096)),
                    min_size=1, max_size=60))
    def test_transfers_never_overlap(self, requests):
        bus = SharedBus(width_bytes=32)
        windows = []
        for now, size in sorted(requests):
            start, finish = bus.transfer(now, size)
            assert start >= now
            windows.append((start, finish))
        for (s1, f1), (s2, f2) in zip(windows, windows[1:]):
            assert s2 >= f1


class TestScheduleCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5),
                              st.integers(8, 60)),
                    min_size=1, max_size=120))
    def test_capacity_invariant(self, inserts):
        sc = ScheduleCache(capacity_bytes=2048)
        for pc_idx, path, n in inserts:
            sc.insert(Schedule(start_pc=0x1000 + pc_idx * 0x100,
                               path_hash=path,
                               issue_order=tuple(range(n))))
        assert sc.used_bytes <= 2048
        assert sc.used_bytes == sum(
            s.storage_bytes for s in sc.contents())

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 8)),
                    min_size=1, max_size=80))
    def test_paths_per_pc_invariant(self, inserts):
        sc = ScheduleCache(capacity_bytes=None, paths_per_pc=3)
        for pc_idx, path in inserts:
            sc.insert(Schedule(start_pc=pc_idx, path_hash=path,
                               issue_order=tuple(range(10))))
        per_pc = {}
        for s in sc.contents():
            per_pc[s.start_pc] = per_pc.get(s.start_pc, 0) + 1
        assert all(n <= 3 for n in per_pc.values())

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 3)),
                    min_size=1, max_size=60))
    def test_lookup_after_insert(self, inserts):
        sc = ScheduleCache(capacity_bytes=None)
        for pc, path in inserts:
            sc.insert(Schedule(start_pc=pc, path_hash=path,
                               issue_order=tuple(range(12))))
            assert sc.probe(pc, path) is not None


class TestTraceBuilderProperties:
    @given(st.integers(0, 2**31), st.integers(200, 1200))
    @settings(max_examples=20, deadline=None)
    def test_traces_reconstruct_stream(self, seed, n):
        """Concatenated trace instructions == the original stream."""
        bench = make_benchmark("gcc", seed=seed % 7)
        insns = list(itertools.islice(bench.stream(), n))
        builder = TraceBuilder()
        rebuilt = []
        for insn in insns:
            t = builder.feed(insn)
            if t:
                rebuilt.extend(t.instructions)
        tail = builder.flush()
        if tail:
            rebuilt.extend(tail.instructions)
        assert [i.seq for i in rebuilt] == [i.seq for i in insns]

    @given(st.integers(1, 40))
    def test_every_trace_ends_with_backward_branch(self, iters):
        builder = TraceBuilder()
        traces = []
        seq = 0
        for k in range(iters):
            for i in range(5):
                t = builder.feed(Instruction(
                    seq=seq, pc=0x100 + 4 * i, opclass=OpClass.IALU,
                    dst=4, srcs=(1,)))
                assert t is None
                seq += 1
            t = builder.feed(Instruction(
                seq=seq, pc=0x114, opclass=OpClass.BRANCH,
                is_branch=True, taken=True, target=0x100))
            seq += 1
            traces.append(t)
        assert all(t is not None for t in traces)
        assert all(t.instructions[-1].is_backward_branch for t in traces)


class TestMetricsProperties:
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=32))
    def test_stp_bounded_by_extremes(self, speedups):
        stp = system_throughput(speedups)
        assert min(speedups) - 1e-9 <= stp <= max(speedups) + 1e-9

    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=32))
    def test_fairness_index_in_unit_interval(self, shares):
        fi = fairness_index(shares)
        assert 0.0 < fi <= 1.0 + 1e-9

    @given(st.floats(0.01, 10.0), st.integers(2, 32))
    def test_equal_shares_perfectly_fair(self, value, n):
        assert fairness_index([value] * n) >= 1.0 - 1e-9


class TestGeneratorProperties:
    @given(st.sampled_from(["hmmer", "gcc", "mcf", "astar"]),
           st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_stream_replay_identical(self, name, seed):
        bench = make_benchmark(name, seed=seed)
        a = list(itertools.islice(bench.stream(), 400))
        b = list(itertools.islice(bench.stream(), 400))
        assert [(i.pc, i.opclass, i.mem_addr, i.taken) for i in a] == \
            [(i.pc, i.opclass, i.mem_addr, i.taken) for i in b]

    @given(st.sampled_from(["bzip2", "libquantum"]))
    @settings(max_examples=4, deadline=None)
    def test_pcs_are_word_aligned(self, name):
        bench = make_benchmark(name, seed=1)
        for insn in itertools.islice(bench.stream(), 500):
            assert insn.pc % 4 == 0
