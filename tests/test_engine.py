"""Tests for the engine phase pipeline behind the interval tier."""

import pytest

from repro.engine import (
    AnalyticBackend,
    ArbitrationPhase,
    EnginePhase,
    EnergyPhase,
    ExecutionPhase,
    IntervalEngine,
    MigrationPhase,
    interval_tier_views,
)
from repro.experiments.common import make_system
from repro.telemetry import IntervalRecord, MemorySink, Telemetry
from repro.workloads import WorkloadMix

MIX = WorkloadMix(name="engine", category="Random",
                  benchmarks=("bzip2", "astar", "hmmer", "namd"))


class TestPipelineAssembly:
    def test_standard_phase_order(self):
        system = make_system(MIX, "SC-MPKI")
        assert [p.name for p in system.phases] == [
            "arbitration", "migration", "execution", "energy"]

    def test_duplicate_phase_names_rejected(self):
        system = make_system(MIX, "SC-MPKI")
        with pytest.raises(ValueError, match="duplicate"):
            IntervalEngine(system.config, system.apps,
                           [ExecutionPhase(), ExecutionPhase()])

    def test_interval_sample_alias(self):
        # The old history row type is the telemetry record now; the
        # deep-import spelling still resolves, but deprecated.
        with pytest.warns(DeprecationWarning, match="IntervalSample"):
            from repro.cmp.system import IntervalSample
        assert IntervalSample is IntervalRecord


class TestCustomPhase:
    def test_insertion_order_is_execution_order(self):
        # Phases run exactly in list order, every interval — a custom
        # phase slotted between standard ones sees mid-pipeline state.
        order = []

        def tap(name, probe=None):
            class Tap(EnginePhase):
                def run(self, ctx):
                    order.append(name)
                    if probe is not None:
                        probe(ctx)
            Tap.name = name
            return Tap()

        seen_mid = {}

        def mid_probe(ctx):
            # After migration, before execution: outcomes still empty.
            seen_mid.setdefault("outcomes", list(ctx.outcomes))

        base = make_system(MIX, "SC-MPKI")
        engine = IntervalEngine(
            base.config, base.apps,
            [tap("pre"), *base.phases, tap("post")],
            backend=AnalyticBackend(base.migration))
        engine.phases.insert(3, tap("mid", mid_probe))
        ctx = engine.run(max_intervals=2)
        assert ctx.intervals == 2
        assert order == ["pre", "mid", "post"] * 2
        assert seen_mid["outcomes"] == [None] * len(base.apps)
        assert [p.name for p in engine.phases] == [
            "pre", "arbitration", "migration", "mid", "execution",
            "energy", "post"]

    def test_custom_phase_runs_every_interval(self):
        class CountingPhase(EnginePhase):
            name = "counting"

            def __init__(self):
                self.calls = 0

            def run(self, ctx):
                self.calls += 1
                ctx.telemetry.counters.bump("counting.calls")

        base = make_system(MIX, "SC-MPKI")
        counting = CountingPhase()
        telemetry = Telemetry()
        engine = IntervalEngine(
            base.config, base.apps,
            [*base.phases, counting], telemetry=telemetry)
        ctx = engine.run(max_intervals=25)
        assert counting.calls == ctx.intervals == 25
        assert telemetry.counters["counting.calls"] == 25
        assert "counting" in telemetry.profiler.seconds


class TestProfiler:
    def test_all_phases_profiled(self):
        system = make_system(MIX, "SC-MPKI")
        system.run(max_intervals=30)
        profiler = system.telemetry.profiler
        assert set(profiler.seconds) == {
            "arbitration", "migration", "execution", "energy"}
        assert all(calls == 30 for calls in profiler.calls.values())
        assert profiler.total_seconds > 0


class TestViews:
    def test_views_match_shared_builder(self):
        system = make_system(MIX, "SC-MPKI")
        system.run(max_intervals=40)
        assert system._views() == interval_tier_views(system.apps)

    def test_views_reflect_state(self):
        system = make_system(MIX, "SC-MPKI")
        system.run(max_intervals=40)
        views = system._views()
        assert [v.name for v in views] == list(MIX)
        assert sum(v.on_ooo for v in views) <= system.config.n_producers
        assert all(0.0 <= v.util <= 1.0 for v in views)


class TestTelemetryNeutrality:
    def test_observed_run_matches_unobserved(self):
        # Attaching every sink must not perturb the simulation: the
        # wants() gating only skips record construction, never state.
        plain = make_system(MIX, "SC-MPKI")
        observed = make_system(MIX, "SC-MPKI",
                               telemetry=Telemetry(sinks=[MemorySink()]))
        r_plain = plain.run(max_intervals=200)
        r_observed = observed.run(max_intervals=200)
        assert r_plain.speedups == r_observed.speedups
        assert r_plain.energy_pj == r_observed.energy_pj
        assert r_plain.intervals == r_observed.intervals
        assert (r_plain.ooo_share_per_app
                == r_observed.ooo_share_per_app)
        assert r_plain.migrations == r_observed.migrations

    def test_engine_reuse_across_runs(self):
        # App state persists between run() calls; the interval index
        # restarts (the white-box multi-run convention).
        system = make_system(MIX, "SC-MPKI")
        first = system.run(max_intervals=10)
        done = [a.instr_done for a in system.apps]
        second = system.run(max_intervals=10)
        assert first.intervals == second.intervals == 10
        assert all(after >= before for before, after in
                   zip(done, (a.instr_done for a in system.apps)))


class TestExecutionBackends:
    """The pluggable-substrate seam under the shared phase pipeline."""

    def test_default_backend_is_analytic(self):
        base = make_system(MIX, "SC-MPKI")
        engine = IntervalEngine(base.config, base.apps, base.phases)
        assert isinstance(engine.backend, AnalyticBackend)
        assert engine.backend.name == "analytic"

    def test_cmp_system_shares_cost_model_with_backend(self):
        system = make_system(MIX, "SC-MPKI")
        assert system.engine.backend is system.backend
        assert system.backend.migration is system.migration

    def test_detailed_cluster_uses_detailed_backend(self):
        from repro.cmp.detailed import DetailedBackend, \
            DetailedMirageCluster
        from repro.arbiter import SCMPKIArbitrator
        from repro.workloads import make_benchmark

        cluster = DetailedMirageCluster(
            [make_benchmark("hmmer", seed=3),
             make_benchmark("gcc", seed=3, base_addr=2 << 34)],
            SCMPKIArbitrator(), slice_instructions=2_000)
        assert isinstance(cluster.engine.backend, DetailedBackend)
        assert cluster.engine.backend.name == "detailed"
        # Same four phases as the interval tier: one policy, two
        # substrates.
        assert [p.name for p in cluster.phases] == [
            "arbitration", "migration", "execution", "energy"]
        cluster.run(n_slices=4)
        profiler = cluster.telemetry.profiler
        assert set(profiler.seconds) == {
            "arbitration", "migration", "execution", "energy"}

    def test_custom_backend_drives_the_pipeline(self):
        from repro.engine import ExecutionBackend, ExecOutcome

        class ConstantBackend(ExecutionBackend):
            """Every app advances at a fixed IPC; no migrations."""
            name = "constant"

            def migrate(self, ctx, index, *, to_ooo):
                ctx.apps[index].on_ooo = to_ooo
                return None

            def advance(self, ctx, index):
                app = ctx.apps[index]
                app.instr_done += 0.5 * ctx.interval
                app.ipc_last = 0.5
                app.t_total += ctx.interval
                return ExecOutcome(kind="ino", ipc=0.5, memo_frac=0.0,
                                   effective=ctx.interval)

        base = make_system(MIX, "SC-MPKI")
        engine = IntervalEngine(base.config, base.apps, base.phases,
                                backend=ConstantBackend())
        ctx = engine.run(max_intervals=5)
        assert ctx.intervals == 5
        assert all(a.instr_done == 2.5 * ctx.interval for a in base.apps)

    def test_deferred_migration_ticket_accounting(self):
        # A backend returning None from migrate() owes the accounting
        # from its advance(); account_migration is the shared path.
        from repro.engine import (
            ExecutionBackend, ExecOutcome, MigrationTicket,
            account_migration,
        )

        class DeferringBackend(ExecutionBackend):
            """Analytic-free stub that defers every move."""
            name = "deferring"

            def __init__(self, cost_model):
                self.cost_model = cost_model
                self.pending = {}

            def migrate(self, ctx, index, *, to_ooo):
                self.pending[index] = to_ooo
                return None

            def advance(self, ctx, index):
                app = ctx.apps[index]
                to_ooo = self.pending.pop(index, None)
                if to_ooo is not None:
                    app.on_ooo = to_ooo
                    event = self.cost_model.migrate(
                        app.model.name, now_cycles=ctx.now,
                        interval_index=ctx.index, to_ooo=to_ooo,
                        sc_bytes=128)
                    account_migration(ctx, app.model.name, MigrationTicket(
                        to_ooo=to_ooo, sc_bytes=128, event=event,
                        charged=float(event.total_cycles)))
                app.ipc_last = 1.0
                app.sc_mpki_ino_last = 0.0 if app.on_ooo else 5.0
                app.t_total += ctx.interval
                return ExecOutcome(kind="ino", ipc=1.0, memo_frac=0.0,
                                   effective=ctx.interval)

        base = make_system(MIX, "SC-MPKI")
        backend = DeferringBackend(base.migration)
        telemetry, trace = Telemetry.recording(kinds={"migration"})
        engine = IntervalEngine(base.config, base.apps, base.phases,
                                backend=backend, telemetry=telemetry)
        engine.run(max_intervals=10)
        records = trace.records("migration")
        assert len(records) == base.migration.total_migrations > 0
        assert telemetry.counters["migration.count"] == len(records)
        assert all(r.sc_bytes == 128 for r in records)


class TestPhaseConstruction:
    def test_phases_are_reusable_components(self):
        # A pipeline can be assembled from scratch without CMPSystem.
        base = make_system(MIX, "maxSTP")
        phases = [
            ArbitrationPhase(base.arbitrator),
            MigrationPhase(),
            ExecutionPhase(),
            EnergyPhase(base.energy_model),
        ]
        engine = IntervalEngine(base.config, base.apps, phases,
                                backend=AnalyticBackend(base.migration))
        ctx = engine.run(max_intervals=15)
        assert ctx.intervals == 15
        assert sum(ctx.ooo_share) == ctx.ooo_active_intervals
