"""Tests for the engine phase pipeline behind the interval tier."""

import pytest

from repro.cmp.system import IntervalSample
from repro.engine import (
    ArbitrationPhase,
    EnginePhase,
    EnergyPhase,
    ExecutionPhase,
    IntervalEngine,
    MigrationPhase,
    interval_tier_views,
)
from repro.experiments.common import make_system
from repro.telemetry import IntervalRecord, MemorySink, Telemetry
from repro.workloads import WorkloadMix

MIX = WorkloadMix(name="engine", category="Random",
                  benchmarks=("bzip2", "astar", "hmmer", "namd"))


class TestPipelineAssembly:
    def test_standard_phase_order(self):
        system = make_system(MIX, "SC-MPKI")
        assert [p.name for p in system.phases] == [
            "arbitration", "migration", "execution", "energy"]

    def test_duplicate_phase_names_rejected(self):
        system = make_system(MIX, "SC-MPKI")
        with pytest.raises(ValueError, match="duplicate"):
            IntervalEngine(system.config, system.apps,
                           [ExecutionPhase(), ExecutionPhase()])

    def test_interval_sample_alias(self):
        # The old history row type is the telemetry record now.
        assert IntervalSample is IntervalRecord


class TestCustomPhase:
    def test_custom_phase_runs_every_interval(self):
        class CountingPhase(EnginePhase):
            name = "counting"

            def __init__(self):
                self.calls = 0

            def run(self, ctx):
                self.calls += 1
                ctx.telemetry.counters.bump("counting.calls")

        base = make_system(MIX, "SC-MPKI")
        counting = CountingPhase()
        telemetry = Telemetry()
        engine = IntervalEngine(
            base.config, base.apps,
            [*base.phases, counting], telemetry=telemetry)
        ctx = engine.run(max_intervals=25)
        assert counting.calls == ctx.intervals == 25
        assert telemetry.counters["counting.calls"] == 25
        assert "counting" in telemetry.profiler.seconds


class TestProfiler:
    def test_all_phases_profiled(self):
        system = make_system(MIX, "SC-MPKI")
        system.run(max_intervals=30)
        profiler = system.telemetry.profiler
        assert set(profiler.seconds) == {
            "arbitration", "migration", "execution", "energy"}
        assert all(calls == 30 for calls in profiler.calls.values())
        assert profiler.total_seconds > 0


class TestViews:
    def test_views_match_shared_builder(self):
        system = make_system(MIX, "SC-MPKI")
        system.run(max_intervals=40)
        assert system._views() == interval_tier_views(system.apps)

    def test_views_reflect_state(self):
        system = make_system(MIX, "SC-MPKI")
        system.run(max_intervals=40)
        views = system._views()
        assert [v.name for v in views] == list(MIX)
        assert sum(v.on_ooo for v in views) <= system.config.n_producers
        assert all(0.0 <= v.util <= 1.0 for v in views)


class TestTelemetryNeutrality:
    def test_observed_run_matches_unobserved(self):
        # Attaching every sink must not perturb the simulation: the
        # wants() gating only skips record construction, never state.
        plain = make_system(MIX, "SC-MPKI")
        observed = make_system(MIX, "SC-MPKI",
                               telemetry=Telemetry(sinks=[MemorySink()]))
        r_plain = plain.run(max_intervals=200)
        r_observed = observed.run(max_intervals=200)
        assert r_plain.speedups == r_observed.speedups
        assert r_plain.energy_pj == r_observed.energy_pj
        assert r_plain.intervals == r_observed.intervals
        assert (r_plain.ooo_share_per_app
                == r_observed.ooo_share_per_app)
        assert r_plain.migrations == r_observed.migrations

    def test_engine_reuse_across_runs(self):
        # App state persists between run() calls; the interval index
        # restarts (the white-box multi-run convention).
        system = make_system(MIX, "SC-MPKI")
        first = system.run(max_intervals=10)
        done = [a.instr_done for a in system.apps]
        second = system.run(max_intervals=10)
        assert first.intervals == second.intervals == 10
        assert all(after >= before for before, after in
                   zip(done, (a.instr_done for a in system.apps)))


class TestPhaseConstruction:
    def test_phases_are_reusable_components(self):
        # A pipeline can be assembled from scratch without CMPSystem.
        base = make_system(MIX, "maxSTP")
        phases = [
            ArbitrationPhase(base.arbitrator),
            MigrationPhase(base.migration),
            ExecutionPhase(),
            EnergyPhase(base.energy_model),
        ]
        engine = IntervalEngine(base.config, base.apps, phases)
        ctx = engine.run(max_intervals=15)
        assert ctx.intervals == 15
        assert sum(ctx.ooo_share) == ctx.ooo_active_intervals
