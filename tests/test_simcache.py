"""Tests for repro.simcache — the detailed-tier slice memoization.

The load-bearing property is *bit-identity*: a cluster run served from
the SliceMemo must be indistinguishable — results, AppState fields,
telemetry counters — from the same run re-simulated from scratch, and
from a run with memoization disabled.  The structural tests below pin
the snapshot/restore contracts that identity rests on.
"""

import itertools
import os
from pathlib import Path

import pytest

from repro import simcache
from repro.arbiter import SCMPKIArbitrator
from repro.cmp.detailed import DetailedMirageCluster
from repro.frontend import BranchTargetBuffer, TournamentPredictor
from repro.memory import MemoryHierarchy
from repro.runner import ResultCache, cmp_unit
from repro.schedule import Schedule, ScheduleCache
from repro.simcache import SliceMemo, StreamCursor
from repro.workloads import make_benchmark

#: Where subprocess children find the package (PYTHONPATH=src runs).
REPO_SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def _isolate_global_switch(monkeypatch):
    """Keep the process-wide default and env var out of other tests."""
    monkeypatch.delenv(simcache.ENV_VAR, raising=False)
    monkeypatch.delenv(simcache.DISK_ENV_VAR, raising=False)
    monkeypatch.setattr(simcache, "_enabled", None)
    monkeypatch.setattr(simcache, "_disk_enabled", None)
    monkeypatch.setattr(SliceMemo, "_shared", None)
    monkeypatch.setattr(simcache.SliceStore, "_shared", None)


def small_cluster(sim_cache, *, seed=1, slices=1200):
    return DetailedMirageCluster(
        [make_benchmark("hmmer", seed=seed),
         make_benchmark("mcf", seed=seed)],
        SCMPKIArbitrator(),
        slice_instructions=slices,
        sim_cache=sim_cache,
    )


def run_fingerprint(cluster, result):
    """Everything observable from one run, for identity comparison."""
    counters = {k: v for k, v in sorted(cluster.telemetry.counters.items())
                if not k.startswith("simcache.")}
    apps = [(a.instructions, a.t_total, a.t_ooo, a.ipc_last,
             a.sc_mpki_ino_last, a.sc_mpki_ooo_last, a.migrations,
             a.on_ooo, a.sc.state_snapshot())
            for a in cluster.apps]
    return (result.ipcs, result.ooo_share, result.migrations,
            result.sc_bytes_transferred, result.energy_pj,
            counters, apps)


class TestToggle:
    def test_default_is_on(self):
        assert simcache.enabled() is True

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(simcache.ENV_VAR, "0")
        monkeypatch.setattr(simcache, "_enabled", None)
        assert simcache.enabled() is False

    def test_set_enabled_exports_env(self, monkeypatch):
        import os

        simcache.set_enabled(False)
        assert os.environ[simcache.ENV_VAR] == "0"
        assert simcache.resolve(None) is None
        simcache.set_enabled(True)
        assert os.environ[simcache.ENV_VAR] == "1"
        assert isinstance(simcache.resolve(None), SliceMemo)

    def test_resolve_semantics(self):
        private = SliceMemo()
        assert simcache.resolve(private) is private
        assert simcache.resolve(False) is None
        assert simcache.resolve(True) is SliceMemo.shared()
        assert simcache.resolve(True) is simcache.resolve(True)


class TestStreamCursor:
    def test_take_matches_plain_stream(self):
        bench = make_benchmark("gcc", seed=7)
        cursor = StreamCursor(make_benchmark("gcc", seed=7))
        plain = bench.stream()
        for n in (100, 37, 250):
            expected = list(itertools.islice(plain, n))
            assert cursor.take(n) == expected

    def test_skip_then_take_resynchronizes(self):
        bench = make_benchmark("gcc", seed=7)
        cursor = StreamCursor(make_benchmark("gcc", seed=7))
        plain = bench.stream()
        skipped = list(itertools.islice(plain, 140))  # consumed, unused
        del skipped
        cursor.take(40)
        cursor.skip(100)
        assert cursor.pos == 140
        assert cursor.take(60) == list(itertools.islice(plain, 60))

    def test_fingerprint_identifies_the_stream(self):
        a = StreamCursor(make_benchmark("gcc", seed=7))
        b = StreamCursor(make_benchmark("gcc", seed=7))
        c = StreamCursor(make_benchmark("gcc", seed=8))
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint


class TestSnapshotRestore:
    """state_snapshot/state_restore round-trips on every structure."""

    @staticmethod
    def exercise_memory(mem, base, n=400):
        for i in range(n):
            pc = base + (i % 97) * 4
            addr = base + 0x1000 + (i * 72) % 4096
            if i % 7 == 0:
                mem.store(pc, addr, now=i)
            elif i % 3 == 0:
                mem.fetch(pc, now=i)
            else:
                mem.load(pc, addr, now=i)

    def test_hierarchy_round_trip(self):
        hier = MemoryHierarchy()
        mem = hier.core_view(0)
        self.exercise_memory(mem, 0x10_0000)
        shared_snap = hier.state_snapshot()
        core_snap = mem.state_snapshot()
        self.exercise_memory(mem, 0x90_0000)
        assert hier.state_snapshot() != shared_snap
        hier.state_restore(shared_snap)
        mem.state_restore(core_snap)
        assert hier.state_snapshot() == shared_snap
        assert mem.state_snapshot() == core_snap

    def test_restored_hierarchy_behaves_identically(self):
        # Not just equal snapshots: subsequent accesses (evictions,
        # prefetches, bus timing) must replay the same way.
        def trajectory(hier, mem):
            self.exercise_memory(mem, 0x55_0000, n=600)
            return (hier.state_snapshot(), mem.state_snapshot())

        hier = MemoryHierarchy()
        mem = hier.core_view(0)
        self.exercise_memory(mem, 0x10_0000)
        shared_snap, core_snap = hier.state_snapshot(), mem.state_snapshot()
        expected = trajectory(hier, mem)
        hier.state_restore(shared_snap)
        mem.state_restore(core_snap)
        assert trajectory(hier, mem) == expected

    def test_predictor_and_btb_round_trip(self):
        pred = TournamentPredictor()
        btb = BranchTargetBuffer()
        for i in range(300):
            pred.access(0x4000 + (i % 37) * 4, i % 3 == 0)
            if btb.lookup(0x4000 + (i % 37) * 4) is None:
                btb.install(0x4000 + (i % 37) * 4, 0x5000)
        psnap, bsnap = pred.state_snapshot(), btb.state_snapshot()
        for i in range(100):
            pred.access(0x8000 + i * 4, True)
            btb.install(0x8000 + i * 4, 0x9000)
        pred.state_restore(psnap)
        btb.state_restore(bsnap)
        assert pred.state_snapshot() == psnap
        assert btb.state_snapshot() == bsnap

    def test_schedule_cache_round_trip(self):
        sc = ScheduleCache(2048)
        for pc in range(0x100, 0x800, 0x40):
            sc.insert(Schedule(start_pc=pc, path_hash=pc * 3,
                               issue_order=tuple(range(12))))
        sc.lookup(0x100, 0x300)
        sc.mark_unmemoizable(0x140)
        snap = sc.state_snapshot()
        sc.insert(Schedule(start_pc=0x9000, path_hash=1,
                           issue_order=tuple(range(8))))
        sc.lookup(0x9000, 1)
        sc.state_restore(snap)
        assert sc.state_snapshot() == snap
        assert sc.used_bytes == snap[1]
        assert not sc.has_pc(0x140)        # unmemoizable survived
        assert sc.has_pc(0x180)


class TestScheduleCacheGeneration:
    def make_schedule(self, pc=0x100, path=1):
        return Schedule(start_pc=pc, path_hash=path,
                        issue_order=tuple(range(10)))

    def test_content_changes_bump_generation(self):
        sc = ScheduleCache(None)
        g0 = sc.generation
        sc.insert(self.make_schedule())
        assert sc.generation > g0
        g1 = sc.generation
        sc.mark_unmemoizable(0x100)
        assert sc.generation > g1
        g2 = sc.generation
        sc.invalidate_all()
        assert sc.generation > g2

    def test_lookup_and_probe_do_not_bump(self):
        sc = ScheduleCache(None)
        sc.insert(self.make_schedule())
        g = sc.generation
        sc.lookup(0x100, 1)       # hit: recency/stat update only
        sc.lookup(0x999, 2)       # miss
        sc.probe(0x100, 1)
        sc.has_pc(0x100)
        assert sc.generation == g

    def test_eviction_bumps_generation(self):
        sc = ScheduleCache(128)   # fits only a couple of entries
        sc.insert(self.make_schedule(pc=0x100))
        g = sc.generation
        sc.insert(self.make_schedule(pc=0x200))
        sc.insert(self.make_schedule(pc=0x300))
        assert sc.generation > g


class TestSliceMemo:
    def delta(self, n=1):
        return simcache.SliceDelta(
            kind="oino", instructions=n, cycles=n, ipc=1.0,
            memo_frac=0.0, sc_mpki=0.0, counters={},
            exit_state=((),) * 3)

    def test_lookup_miss_then_hit(self):
        memo = SliceMemo()
        assert memo.lookup(("k",)) is None
        memo.store(("k",), self.delta())
        assert memo.lookup(("k",)).instructions == 1
        assert memo.stats.lookups == 2
        assert memo.stats.hits == 1
        assert memo.stats.misses == 1
        assert memo.stats.hit_rate == 0.5

    def test_lru_eviction_within_capacity(self):
        memo = SliceMemo(capacity=2)
        memo.store(("a",), self.delta())
        memo.store(("b",), self.delta())
        memo.lookup(("a",))               # refresh: b is now LRU
        memo.store(("c",), self.delta())
        assert memo.lookup(("b",)) is None
        assert memo.lookup(("a",)) is not None
        assert memo.lookup(("c",)) is not None
        assert memo.stats.invalidations == 1
        assert memo.num_entries == 2

    def test_bytes_tracking_and_clear(self):
        memo = SliceMemo()
        memo.store(("a",), self.delta())
        assert memo.approx_bytes > 0
        memo.clear()
        assert memo.approx_bytes == 0
        assert memo.num_entries == 0
        assert memo.stats.invalidations == 1

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            SliceMemo(capacity=0)


class TestClusterIdentity:
    """The headline guarantee: memoized == re-simulated, bit for bit."""

    def test_off_cold_and_replayed_runs_agree(self):
        memo = SliceMemo()
        off = small_cluster(False)
        off_res = off.run(n_slices=6)
        cold = small_cluster(memo)
        cold_res = cold.run(n_slices=6)
        warm = small_cluster(memo)
        warm_res = warm.run(n_slices=6)

        assert run_fingerprint(off, off_res) == \
            run_fingerprint(cold, cold_res)
        assert run_fingerprint(cold, cold_res) == \
            run_fingerprint(warm, warm_res)
        # The warm run must actually have replayed every slice.
        assert memo.stats.hits == 12
        assert memo.stats.misses == 12

    def test_warm_run_reports_simcache_counters(self):
        memo = SliceMemo()
        small_cluster(memo).run(n_slices=4)
        warm = small_cluster(memo)
        warm.run(n_slices=4)
        counters = warm.telemetry.counters
        assert counters["simcache.lookups"] == 8
        assert counters["simcache.hits"] == 8
        assert counters.get("simcache.misses", 0) == 0
        assert counters["simcache.replayed_instructions"] == 8 * 1200
        assert counters["simcache.bytes"] > 0
        assert counters["simcache.entries"] == memo.num_entries

    def test_seed_change_misses(self):
        memo = SliceMemo()
        small_cluster(memo, seed=1).run(n_slices=3)
        small_cluster(memo, seed=2).run(n_slices=3)
        assert memo.stats.hits == 0

    def test_disabled_backend_keeps_raw_stream(self):
        off = small_cluster(False)
        assert off.backend.memo is None
        assert not isinstance(off.backend.apps[0].stream, StreamCursor)
        on = small_cluster(SliceMemo())
        assert isinstance(on.backend.apps[0].stream, StreamCursor)


class TestResultCacheKeying:
    def test_key_material_records_sim_cache_setting(self, tmp_path):
        unit = cmp_unit(("hmmer", "gcc"), "SC-MPKI", max_intervals=10)
        on = ResultCache(tmp_path, sim_cache=True)
        off = ResultCache(tmp_path, sim_cache=False)
        assert '"sim_cache":true' in on.key_material("e", unit)
        assert '"sim_cache":false' in off.key_material("e", unit)
        assert on.path_for("e", unit) != off.path_for("e", unit)

    def test_default_follows_process_switch(self, tmp_path):
        simcache.set_enabled(False)
        assert ResultCache(tmp_path).sim_cache is False
        simcache.set_enabled(True)
        assert ResultCache(tmp_path).sim_cache is True


class TestSliceStore:
    """The disk layer: exact-key hits, corruption-tolerant misses."""

    def delta(self, n=1):
        return simcache.SliceDelta(
            kind="oino", instructions=n, cycles=n, ipc=1.0,
            memo_frac=0.0, sc_mpki=0.0, counters={},
            exit_state=((),) * 3)

    def test_round_trip(self, tmp_path):
        store = simcache.SliceStore(tmp_path)
        assert store.load(("k", 1)) is None
        assert store.save(("k", 1), self.delta(7))
        back = store.load(("k", 1))
        assert back.instructions == 7
        assert store.stats.stores == 1
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_hit_requires_exact_key_equality(self, tmp_path):
        # A digest collision (or a moved file) must not serve a wrong
        # entry: the stored key is re-checked after unpickling.
        store = simcache.SliceStore(tmp_path)
        store.save(("k",), self.delta())
        path = store.path_for(("k",))
        other = store.path_for(("other",))
        other.parent.mkdir(parents=True, exist_ok=True)
        other.write_bytes(path.read_bytes())
        assert store.load(("other",)) is None
        assert store.stats.rejected == 1

    def test_corrupt_file_is_a_miss_never_a_crash(self, tmp_path):
        store = simcache.SliceStore(tmp_path)
        store.save(("k",), self.delta())
        store.path_for(("k",)).write_bytes(b"\x80garbage")
        assert store.load(("k",)) is None
        assert store.stats.rejected == 1

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        store = simcache.SliceStore(tmp_path)
        store.save(("k",), self.delta())
        path_v1 = store.path_for(("k",))
        monkeypatch.setattr(simcache, "STORE_SCHEMA",
                            "mirage-slices/v999")
        # Different schema -> different digest -> plain miss.
        assert store.path_for(("k",)) != path_v1
        assert store.load(("k",)) is None

    def test_save_failure_is_best_effort(self, tmp_path):
        # A plain file where the store root should be: every mkdir
        # under it fails, and save() must swallow that (works even as
        # root, where permission bits would not stop the write).
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        store = simcache.SliceStore(blocker / "sub")
        assert store.save(("k",), self.delta()) is False
        assert store.load(("k",)) is None

    def test_memo_promotes_disk_hits(self, tmp_path):
        store = simcache.SliceStore(tmp_path)
        writer = SliceMemo(disk=store)
        writer.store(("k",), self.delta(3))
        assert writer.stats.disk_stores == 1

        reader = SliceMemo(disk=store)
        assert reader.lookup(("k",)).instructions == 3
        assert reader.stats.disk_hits == 1
        # Promoted into memory: the second lookup never goes to disk.
        assert reader.lookup(("k",)).instructions == 3
        assert reader.stats.disk_hits == 1
        assert store.stats.loads == 1

    def test_resolve_attaches_store_only_when_disk_enabled(self):
        simcache.set_enabled(True)
        assert simcache.resolve(None).disk is None
        simcache.set_disk_enabled(True)
        SliceMemo._shared = None
        assert simcache.resolve(None).disk is not None
        # Private memos are used as-is either way.
        private = SliceMemo()
        assert simcache.resolve(private).disk is None

    def test_disk_toggle_exports_env(self):
        simcache.set_disk_enabled(True)
        assert os.environ[simcache.DISK_ENV_VAR] == "1"
        assert simcache.disk_enabled() is True
        simcache.set_disk_enabled(False)
        assert os.environ[simcache.DISK_ENV_VAR] == "0"
        assert simcache.disk_enabled() is False


class TestDiskCrossProcess:
    """The headline disk guarantee: a cold process with a warm store
    replays slices it never simulated."""

    SCRIPT = """
import json, sys
from repro import simcache
from repro.arbiter import SCMPKIArbitrator
from repro.cmp.detailed import DetailedMirageCluster
from repro.workloads import make_benchmark

store = simcache.SliceStore(sys.argv[1])
memo = simcache.SliceMemo(disk=store)
cluster = DetailedMirageCluster(
    [make_benchmark("hmmer", seed=1), make_benchmark("mcf", seed=1)],
    SCMPKIArbitrator(), slice_instructions=1200, sim_cache=memo)
result = cluster.run(n_slices=4)
print(json.dumps({
    "ipcs": result.ipcs,
    "migrations": result.migrations,
    "energy_pj": result.energy_pj,
    "mem_hits": memo.stats.hits,
    "disk_hits": memo.stats.disk_hits,
    "disk_stores": memo.stats.disk_stores,
}))
"""

    def run_child(self, tmp_path):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, str(tmp_path / "slices")],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(REPO_SRC)},
        )
        assert proc.returncode == 0, proc.stderr
        import json

        return json.loads(proc.stdout)

    def test_fresh_process_replays_from_disk(self, tmp_path):
        first = self.run_child(tmp_path)
        assert first["disk_hits"] == 0
        assert first["disk_stores"] == 8

        second = self.run_child(tmp_path)
        # Every slice served from disk, never re-simulated...
        assert second["mem_hits"] == 8
        assert second["disk_hits"] == 8
        # ...and the results are exactly the first process's.
        for field in ("ipcs", "migrations", "energy_pj"):
            assert second[field] == first[field]
