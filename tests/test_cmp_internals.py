"""White-box tests for CMPSystem's interval mechanics."""

import pytest

from repro.arbiter import SCMPKIArbitrator
from repro.arbiter.base import Arbitrator
from repro.characterize import analytic_model
from repro.characterize.phase_model import AppModel, PhaseProfile
from repro.cmp import ClusterConfig, PAPER_SCALE
from repro.cmp.system import CMPSystem


class PinnedArbitrator(Arbitrator):
    """Always assigns (or never assigns) fixed app indices."""

    name = "pinned"

    def __init__(self, picks):
        self.picks = list(picks)

    def pick(self, views, *, interval_index, slots=1):
        return self.picks[:slots]


def flat_model(name="flat", *, ipc_ooo=2.0, ratio=0.5, memo=0.9,
               vol=0.0, trace_kb=2.0):
    """Single-phase AppModel with fully controlled numbers."""
    return AppModel(
        name=name, category="HPD",
        phases=(PhaseProfile(
            phase_id=0, weight=1.0, ipc_ooo=ipc_ooo,
            ipc_ino=ipc_ooo * ratio, memoizable=memo,
            volatility=vol, trace_kb=trace_kb,
        ),),
        pass_instructions=10**9,
    )


def two_app_system(arbitrator, models=None, **cfg_kw):
    models = models or [flat_model("a"), flat_model("b")]
    config = ClusterConfig(n_consumers=2, n_producers=1, mirage=True,
                           **cfg_kw)
    return CMPSystem(config, models, arbitrator)


class TestCoverageDynamics:
    def test_producer_visit_fills_coverage(self):
        system = two_app_system(PinnedArbitrator([0]))
        system.run(max_intervals=3)
        app = system.apps[0]
        # trace_kb=2 fits the 8 KB SC entirely.
        assert app.sc_coverage == pytest.approx(1.0)
        assert app.sc_phase_id == 0

    def test_big_working_set_caps_coverage(self):
        model = flat_model(trace_kb=16.0)   # 2x the SC capacity
        system = two_app_system(PinnedArbitrator([0]),
                                models=[model, flat_model("b")])
        system.run(max_intervals=3)
        assert system.apps[0].sc_coverage == pytest.approx(0.5)

    def test_volatility_decays_coverage(self):
        model = flat_model(vol=0.2)
        system = two_app_system(PinnedArbitrator([0]),
                                models=[model, flat_model("b")])
        # One producer interval, then pin the OoO to app 1.
        system.run(max_intervals=1)
        system.arbitrator.picks = [1]
        system.run(max_intervals=4)
        cov = system.apps[0].sc_coverage
        assert cov < 1.0
        assert cov == pytest.approx(0.8 ** 4, rel=0.2)

    def test_zero_volatility_retains_coverage(self):
        system = two_app_system(PinnedArbitrator([0]))
        system.run(max_intervals=1)
        system.arbitrator.picks = [1]
        system.run(max_intervals=5)
        assert system.apps[0].sc_coverage == pytest.approx(1.0)


class TestPerformanceAccounting:
    def test_ooo_resident_runs_at_ooo_ipc(self):
        system = two_app_system(PinnedArbitrator([0]))
        system.run(max_intervals=2)
        assert system.apps[0].ipc_last == pytest.approx(2.0)

    def test_consumer_with_full_coverage_near_ooo(self):
        system = two_app_system(PinnedArbitrator([0]))
        system.run(max_intervals=1)
        system.arbitrator.picks = [1]
        system.run(max_intervals=2)
        ipc = system.apps[0].ipc_last
        # memo 0.9 x replay-efficiency 0.92 of 2.0 + 0.1 x 1.0
        assert ipc == pytest.approx(0.9 * 0.92 * 2.0 + 0.1 * 1.0,
                                    rel=0.02)

    def test_cold_consumer_runs_at_ino_ipc(self):
        system = two_app_system(PinnedArbitrator([1]))
        system.run(max_intervals=2)
        assert system.apps[0].ipc_last == pytest.approx(1.0)


class TestCounters:
    def test_util_counts_memoized_time(self):
        system = two_app_system(PinnedArbitrator([0]))
        system.run(max_intervals=1)
        system.arbitrator.picks = [1]
        system.run(max_intervals=10)
        app = system.apps[0]
        assert app.t_memoized > 0
        views = system._views()
        assert views[0].util > views[1].util * 0.5

    def test_intervals_since_ooo_resets(self):
        system = two_app_system(PinnedArbitrator([0]))
        system.run(max_intervals=1)
        assert system.apps[0].intervals_since_ooo == 0
        system.arbitrator.picks = [1]
        system.run(max_intervals=3)
        assert system.apps[0].intervals_since_ooo == 3

    def test_completion_time_interpolated(self):
        # ipc 2.0, interval 20k cycles -> budget 20M instr completes
        # at exactly 500 intervals of pure OoO execution.
        model = flat_model(ipc_ooo=2.0)
        system = two_app_system(PinnedArbitrator([0]),
                                models=[model, flat_model("b")])
        budget = system.config.scale.app_instruction_budget
        intervals_needed = budget / (2.0 * 20_000)
        system.run(max_intervals=int(intervals_needed) + 10)
        done_at = system.apps[0].first_completion_cycles
        assert done_at == pytest.approx(
            intervals_needed * 20_000, rel=0.02)


class TestPaperScale:
    def test_interval_tier_runs_at_paper_scale(self):
        """The simulator works with the unscaled 1 M-cycle constants."""
        models = [analytic_model("hmmer"), analytic_model("bzip2")]
        config = ClusterConfig(n_consumers=2, n_producers=1,
                               mirage=True, scale=PAPER_SCALE)
        system = CMPSystem(config, models, SCMPKIArbitrator())
        result = system.run(max_intervals=100)
        assert result.intervals == 100
        assert result.total_cycles == 100 * 1_000_000
        # Migration cost ratios survive the scale change.
        overhead = sum(result.migration_cost_cycles.values())
        assert overhead < result.total_cycles * 0.1
