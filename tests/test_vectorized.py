"""Randomized scalar-vs-vectorized equivalence for the analytic tier.

The vectorized ``advance_all`` kernel in
:class:`~repro.engine.backends.AnalyticBackend` must be *bit-identical*
to the fused scalar kernel (and both to the reference per-app
``advance``): every experiment table is required to be byte-identical
whichever kernel runs.  These tests drive whole CMP simulations over
randomized mixes, widths, producer counts and arbitrators with the
kernel forced each way, and compare every float of the results
exactly — no tolerances.
"""

import dataclasses
import random

import pytest

from repro.arbiter import (
    FairArbitrator,
    MaxSTPArbitrator,
    SCMPKIArbitrator,
)
from repro.characterize import analytic_model
from repro.cmp import ClusterConfig
from repro.cmp.system import CMPSystem
from repro.engine.backends import VECTOR_ENV, VECTOR_MIN_APPS
from repro.workloads import ALL_BENCHMARKS


def run_once(names, *, vectorize, arbitrator=SCMPKIArbitrator,
             n_producers=1, max_intervals=200):
    models = [analytic_model(name) for name in names]
    config = ClusterConfig(n_consumers=len(names),
                           n_producers=n_producers, mirage=True)
    system = CMPSystem(config, models, arbitrator(),
                       vectorize=vectorize)
    return system.run(max_intervals=max_intervals)


def exact(result):
    """Every field of a CMPResult, for exact (bitwise float) compare."""
    d = dataclasses.asdict(result)
    d.pop("history", None)
    return d


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_mix_bit_identical(self, seed):
        rng = random.Random(seed)
        width = rng.randint(2, 12)
        names = rng.choices(ALL_BENCHMARKS, k=width)
        n_producers = rng.randint(1, min(3, width))
        arbitrator = rng.choice(
            [SCMPKIArbitrator, MaxSTPArbitrator, FairArbitrator])
        scalar = run_once(names, vectorize=False,
                          arbitrator=arbitrator, n_producers=n_producers)
        vector = run_once(names, vectorize=True,
                          arbitrator=arbitrator, n_producers=n_producers)
        assert exact(scalar) == exact(vector)

    def test_wide_cluster_bit_identical(self):
        # Past the auto-vectorize threshold, where the numpy path is
        # the production default.
        names = [ALL_BENCHMARKS[i % len(ALL_BENCHMARKS)]
                 for i in range(VECTOR_MIN_APPS + 4)]
        scalar = run_once(names, vectorize=False, n_producers=4,
                          max_intervals=120)
        vector = run_once(names, vectorize=True, n_producers=4,
                          max_intervals=120)
        assert exact(scalar) == exact(vector)

    def test_run_to_completion_bit_identical(self):
        # No interval cap: completions, restarts, and the energy
        # stop-billing edge all behave identically.
        names = ["bzip2", "astar", "hmmer", "namd"]
        scalar = run_once(names, vectorize=False, max_intervals=50_000)
        vector = run_once(names, vectorize=True, max_intervals=50_000)
        assert exact(scalar) == exact(vector)


class TestKernelSelection:
    def _backend(self, n_apps, vectorize=None):
        from repro.arbiter import SCMPKIArbitrator

        names = [ALL_BENCHMARKS[i % len(ALL_BENCHMARKS)]
                 for i in range(n_apps)]
        models = [analytic_model(name) for name in names]
        config = ClusterConfig(n_consumers=n_apps, n_producers=1,
                               mirage=True)
        system = CMPSystem(config, models, SCMPKIArbitrator(),
                           vectorize=vectorize)
        system.run(max_intervals=1)
        return system.engine.backend

    def test_auto_narrow_is_scalar(self, monkeypatch):
        monkeypatch.delenv(VECTOR_ENV, raising=False)
        assert self._backend(4)._vec is None

    def test_auto_wide_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(VECTOR_ENV, raising=False)
        assert self._backend(VECTOR_MIN_APPS)._vec is not None

    def test_env_overrides_width(self, monkeypatch):
        monkeypatch.setenv(VECTOR_ENV, "1")
        assert self._backend(2)._vec is not None
        monkeypatch.setenv(VECTOR_ENV, "0")
        assert self._backend(VECTOR_MIN_APPS)._vec is None

    def test_ctor_overrides_env(self, monkeypatch):
        monkeypatch.setenv(VECTOR_ENV, "0")
        assert self._backend(2, vectorize=True)._vec is not None
        monkeypatch.setenv(VECTOR_ENV, "1")
        assert self._backend(2, vectorize=False)._vec is None
