"""Unit and integration tests for the interval-level CMP simulator."""

import pytest

from repro.arbiter import (
    FairArbitrator,
    MaxSTPArbitrator,
    SCMPKIArbitrator,
    SCMPKIFairArbitrator,
)
from repro.characterize import analytic_model
from repro.cmp import ClusterConfig, PAPER_SCALE, SIM_SCALE
from repro.cmp.migration import MigrationCostModel
from repro.cmp.system import CMPSystem, run_homo

MIX8 = ["hmmer", "bzip2", "astar", "mcf", "gcc", "libquantum", "gobmk",
        "namd"]


def models(names=MIX8):
    return [analytic_model(n) for n in names]


def mirage_config(n=8, **kw):
    return ClusterConfig(n_consumers=n, n_producers=1, mirage=True, **kw)


class TestTimeScale:
    def test_scaling_preserves_ratios(self):
        scaled = PAPER_SCALE.scaled(1 / 50)
        ratio = (PAPER_SCALE.sc_transfer_cycles
                 / PAPER_SCALE.interval_cycles)
        assert scaled.sc_transfer_cycles / scaled.interval_cycles == \
            pytest.approx(ratio, rel=0.1)

    def test_sim_scale_interval(self):
        assert SIM_SCALE.interval_cycles == 20_000

    def test_scaling_never_hits_zero(self):
        tiny = PAPER_SCALE.scaled(1e-9)
        assert tiny.drain_cycles >= 1


class TestClusterConfig:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_consumers=0, n_producers=0)

    def test_name(self):
        assert "Mirage" in mirage_config().name
        assert "HetCMP" in ClusterConfig(
            n_consumers=4, n_producers=1, mirage=False).name


class TestMigrationModel:
    def test_cost_components(self):
        model = MigrationCostModel(mirage_config())
        event = model.migrate("app", now_cycles=0, interval_index=0,
                              to_ooo=True, sc_bytes=8192)
        assert event.sc_transfer_cycles > 0
        assert event.l1_warmup_cycles == SIM_SCALE.l1_warmup_cycles
        assert event.total_cycles > event.l1_warmup_cycles

    def test_empty_sc_costs_no_transfer(self):
        model = MigrationCostModel(mirage_config())
        event = model.migrate("app", now_cycles=0, interval_index=0,
                              to_ooo=True, sc_bytes=0)
        assert event.sc_transfer_cycles == 0

    def test_traditional_has_no_sc_cost(self):
        cfg = ClusterConfig(n_consumers=4, n_producers=1, mirage=False)
        model = MigrationCostModel(cfg)
        event = model.migrate("app", now_cycles=0, interval_index=0,
                              to_ooo=True, sc_bytes=8192)
        assert event.sc_transfer_cycles == 0

    def test_partial_sc_scales_cost(self):
        model = MigrationCostModel(mirage_config())
        full = model.migrate("a", now_cycles=0, interval_index=0,
                             to_ooo=True, sc_bytes=8192)
        half = model.migrate("b", now_cycles=10**6, interval_index=1,
                             to_ooo=True, sc_bytes=4096)
        assert half.sc_transfer_cycles < full.sc_transfer_cycles

    def test_summary_aggregates(self):
        model = MigrationCostModel(mirage_config())
        for k in range(3):
            model.migrate("app", now_cycles=k * 10**6, interval_index=k,
                          to_ooo=bool(k % 2), sc_bytes=8192)
        summary = model.cost_summary()
        assert model.total_migrations == 3
        assert summary["l1_warmup"] == 3 * SIM_SCALE.l1_warmup_cycles


class TestCMPSystem:
    def test_requires_enough_cores(self):
        with pytest.raises(ValueError):
            CMPSystem(ClusterConfig(n_consumers=2, n_producers=1),
                      models(), SCMPKIArbitrator())

    def test_requires_arbitrator_with_producer(self):
        with pytest.raises(ValueError):
            CMPSystem(mirage_config(), models(), None)

    def test_run_completes_all_apps(self):
        system = CMPSystem(mirage_config(), models(), SCMPKIArbitrator())
        result = system.run()
        assert result.intervals > 0
        assert len(result.speedups) == 8
        assert all(0.0 < s <= 1.0 for s in result.speedups)

    def test_determinism(self):
        r1 = CMPSystem(mirage_config(), models(),
                       SCMPKIArbitrator()).run()
        r2 = CMPSystem(mirage_config(), models(),
                       SCMPKIArbitrator()).run()
        assert r1.speedups == r2.speedups
        assert r1.energy_pj == r2.energy_pj

    def test_mirage_beats_plain_ino(self):
        cfg = mirage_config()
        mirage = CMPSystem(cfg, models(), SCMPKIArbitrator()).run()
        homo_ino = run_homo(models(), kind="ino", config=cfg)
        assert mirage.stp > homo_ino.stp

    def test_mirage_beats_traditional_het(self):
        mirage = CMPSystem(mirage_config(), models(),
                           SCMPKIArbitrator()).run()
        trad = CMPSystem(
            ClusterConfig(n_consumers=8, n_producers=1, mirage=False),
            models(), MaxSTPArbitrator()).run()
        assert mirage.stp > trad.stp

    def test_sc_mpki_gates_ooo_sometimes(self):
        result = CMPSystem(mirage_config(), models(),
                           SCMPKIArbitrator()).run()
        assert result.ooo_active_fraction < 1.0

    def test_max_stp_never_gates(self):
        result = CMPSystem(
            ClusterConfig(n_consumers=8, n_producers=1, mirage=False),
            models(), MaxSTPArbitrator()).run()
        assert result.ooo_active_fraction == pytest.approx(1.0)

    def test_fair_shares_are_equal(self):
        result = CMPSystem(
            ClusterConfig(n_consumers=8, n_producers=1, mirage=False),
            models(), FairArbitrator()).run()
        shares = result.ooo_share_per_app
        assert max(shares) - min(shares) < 0.05

    def test_sc_mpki_fair_caps_shares(self):
        result = CMPSystem(mirage_config(), models(),
                           SCMPKIFairArbitrator()).run()
        assert max(result.ooo_share_per_app) <= 1 / 8 + 0.12

    def test_energy_below_homo_ooo(self):
        cfg = mirage_config()
        mirage = CMPSystem(cfg, models(), SCMPKIArbitrator()).run()
        homo = run_homo(models(), kind="ooo", config=cfg)
        assert mirage.energy_pj < homo.energy_pj

    def test_migrations_counted(self):
        result = CMPSystem(mirage_config(), models(),
                           SCMPKIArbitrator()).run()
        assert result.migrations > 0
        assert result.migration_frequency > 0

    def test_history_recording(self):
        system = CMPSystem(mirage_config(), models(),
                           SCMPKIArbitrator(), record_history=True)
        system.run(max_intervals=50)
        assert len(system.history) == 50 * 8
        apps = {s.app for s in system.history}
        assert apps == set(MIX8)

    def test_more_consumers_saturate_ooo(self):
        small = CMPSystem(mirage_config(4), models(MIX8[:4]),
                          SCMPKIArbitrator()).run()
        names16 = MIX8 + MIX8
        big = CMPSystem(mirage_config(16),
                        [analytic_model(n) for n in names16],
                        SCMPKIArbitrator()).run()
        assert big.ooo_active_fraction >= small.ooo_active_fraction

    def test_fewer_consumers_than_apps_allowed_with_producers(self):
        # 5:3 area-neutral config: 8 apps on 5 consumers + 3 producers.
        cfg = ClusterConfig(n_consumers=5, n_producers=3, mirage=False)
        result = CMPSystem(cfg, models(), MaxSTPArbitrator()).run()
        assert result.intervals > 0


class TestHomoBaselines:
    def test_homo_ooo_speedups_are_one(self):
        result = run_homo(models(), kind="ooo", config=mirage_config())
        assert all(s == pytest.approx(1.0) for s in result.speedups)

    def test_homo_ino_speedups_match_ratio(self):
        result = run_homo(models(), kind="ino", config=mirage_config())
        for model, s in zip(models(), result.speedups):
            assert s == pytest.approx(
                model.mean_ipc_ino / model.mean_ipc_ooo, rel=0.01)

    def test_homo_kind_validated(self):
        with pytest.raises(ValueError):
            run_homo(models(), kind="oino", config=mirage_config())

    def test_homo_ino_uses_less_energy(self):
        cfg = mirage_config()
        ooo = run_homo(models(), kind="ooo", config=cfg)
        ino = run_homo(models(), kind="ino", config=cfg)
        assert ino.energy_pj < ooo.energy_pj
