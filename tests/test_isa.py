"""Unit tests for the instruction model and program shapes."""

import pytest

from repro.isa import (
    BasicBlock,
    FP_REG_BASE,
    Instruction,
    InstructionStream,
    OpClass,
    is_fp_class,
    is_mem_class,
    iter_block,
)
from repro.isa.instructions import BASE_LATENCY
from repro.isa.program import BlockInstr


def make(opclass=OpClass.IALU, **kw):
    defaults = dict(seq=0, pc=0x1000, opclass=opclass)
    defaults.update(kw)
    return Instruction(**defaults)


class TestOpClass:
    def test_every_opclass_has_latency(self):
        for opclass in OpClass:
            assert BASE_LATENCY[opclass] >= 1

    def test_mem_classes(self):
        assert is_mem_class(OpClass.LOAD)
        assert is_mem_class(OpClass.STORE)
        assert not is_mem_class(OpClass.IALU)
        assert not is_mem_class(OpClass.BRANCH)

    def test_fp_classes(self):
        assert is_fp_class(OpClass.FALU)
        assert is_fp_class(OpClass.FMUL)
        assert is_fp_class(OpClass.FDIV)
        assert not is_fp_class(OpClass.IMUL)

    def test_divides_are_slowest(self):
        assert BASE_LATENCY[OpClass.FDIV] > BASE_LATENCY[OpClass.FMUL]
        assert BASE_LATENCY[OpClass.IDIV] > BASE_LATENCY[OpClass.IMUL]


class TestInstruction:
    def test_load_properties(self):
        insn = make(OpClass.LOAD, mem_addr=0x2000, dst=5)
        assert insn.is_load and insn.is_mem and not insn.is_store

    def test_store_properties(self):
        insn = make(OpClass.STORE, mem_addr=0x2000)
        assert insn.is_store and insn.is_mem and not insn.is_load

    def test_backward_branch_detection(self):
        taken_back = make(OpClass.BRANCH, is_branch=True, taken=True,
                          target=0x0F00)
        assert taken_back.is_backward_branch

    def test_forward_branch_is_not_backward(self):
        fwd = make(OpClass.BRANCH, is_branch=True, taken=True,
                   target=0x2000)
        assert not fwd.is_backward_branch

    def test_not_taken_backward_branch_does_not_delimit(self):
        nt = make(OpClass.BRANCH, is_branch=True, taken=False,
                  target=0x0F00)
        assert not nt.is_backward_branch

    def test_self_branch_counts_as_backward(self):
        self_loop = make(OpClass.BRANCH, is_branch=True, taken=True,
                         target=0x1000)
        assert self_loop.is_backward_branch

    def test_base_latency_matches_opclass(self):
        assert make(OpClass.FDIV).base_latency == BASE_LATENCY[OpClass.FDIV]

    def test_encoding_is_four_bytes(self):
        assert make().encoding_bytes() == 4

    def test_fp_register_namespace(self):
        insn = make(OpClass.FALU, dst=FP_REG_BASE + 4)
        assert insn.dst >= FP_REG_BASE


class TestIterBlock:
    def test_straightline_block(self):
        block = BasicBlock(start_pc=0x4000, instrs=[
            BlockInstr(OpClass.IALU, dst=4, srcs=(1,)),
            BlockInstr(OpClass.IALU, dst=5, srcs=(4,)),
        ])
        insns = list(iter_block(block, seq_start=10))
        assert [i.seq for i in insns] == [10, 11]
        assert [i.pc for i in insns] == [0x4000, 0x4004]

    def test_loop_back_emits_backward_branch(self):
        block = BasicBlock(start_pc=0x4000, instrs=[
            BlockInstr(OpClass.IALU, dst=4, srcs=(1,)),
        ], loop_back=True)
        insns = list(iter_block(block, seq_start=0))
        assert insns[-1].is_backward_branch
        assert insns[-1].target == 0x4000

    def test_loop_exit_branch_not_taken(self):
        block = BasicBlock(start_pc=0x4000, instrs=[
            BlockInstr(OpClass.IALU, dst=4, srcs=(1,)),
        ], loop_back=True)
        insns = list(iter_block(block, seq_start=0, taken=False))
        assert not insns[-1].taken

    def test_memory_op_requires_addr_callback(self):
        block = BasicBlock(start_pc=0x4000, instrs=[
            BlockInstr(OpClass.LOAD, dst=4, srcs=(1,), mem_stream=0),
        ])
        with pytest.raises(ValueError):
            list(iter_block(block, seq_start=0))

    def test_memory_op_resolves_address(self):
        block = BasicBlock(start_pc=0x4000, instrs=[
            BlockInstr(OpClass.LOAD, dst=4, srcs=(1,), mem_stream=7),
        ])
        insns = list(iter_block(block, seq_start=0,
                                addr_of=lambda sid: 0x8000 + sid))
        assert insns[0].mem_addr == 0x8007

    def test_block_size_includes_terminator(self):
        block = BasicBlock(start_pc=0, instrs=[
            BlockInstr(OpClass.IALU, dst=4, srcs=())], loop_back=True)
        assert block.size == 2
        assert block.end_pc == 8


class TestInstructionStream:
    def test_counts_emitted(self):
        stream = InstructionStream(make(seq=i) for i in range(5))
        consumed = list(stream)
        assert len(consumed) == 5
        assert stream.emitted == 5
