"""Documentation and packaging hygiene checks.

Keeps the deliverables honest: every promised doc exists, every bench
target DESIGN.md names is a real file, every public module carries a
docstring, public surfaces of the bench/engine/telemetry subsystems
are fully documented, and the package version matches pyproject.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parent.parent

#: Subsystems whose exported symbols must each carry a docstring —
#: including public methods and properties of exported classes.
DOCUMENTED_SURFACES = [
    "repro.bench",
    "repro.bench.registry",
    "repro.bench.harness",
    "repro.bench.compare",
    "repro.engine",
    "repro.engine.backends",
    "repro.engine.phases",
    "repro.engine.registry",
    "repro.cores.cgooo",
    "repro.cmp.migration",
    "repro.experiments.backend_matrix",
    "repro.telemetry.events",
    "repro.api",
    "repro.config",
    "repro.cmp.sharded",
    "repro.workloads.scenario",
    "repro.engine.lifecycle",
    "repro.cluster",
    "repro.cluster.scheduler",
    "repro.cluster.dynamic",
    "repro.metrics.scenario",
    "repro.service",
    "repro.service.protocol",
    "repro.service.jobs",
    "repro.service.registry",
    "repro.service.journal",
    "repro.service.server",
    "repro.service.worker",
    "repro.service.client",
    "repro.service.cli",
]


def _public_exports(module):
    """The module's __all__, or its public defined-here symbols."""
    if hasattr(module, "__all__"):
        return list(module.__all__)
    return [
        name for name, obj in vars(module).items()
        if not name.startswith("_")
        and (inspect.isclass(obj) or inspect.isfunction(obj))
        and getattr(obj, "__module__", None) == module.__name__
    ]


class TestDocuments:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/architecture.md", "docs/api.md", "docs/service.md",
    ])
    def test_document_exists_and_is_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 1_000, name

    def test_design_bench_targets_exist(self):
        """Every `benchmarks/test_*.py` that DESIGN.md references."""
        design = (REPO / "DESIGN.md").read_text()
        referenced = {
            token.strip("`")
            for token in design.split()
            if token.strip("`").startswith("benchmarks/test_")
        }
        assert referenced, "DESIGN.md should reference bench targets"
        for rel in referenced:
            assert (REPO / rel).exists(), rel

    def test_experiments_md_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for figure in ("Table 1", "Figure 1", "Figure 2", "Figure 3b",
                       "Figure 5", "Figure 6", "Figure 7", "Figure 8",
                       "Figure 9a", "Figure 9b", "Figure 10",
                       "Figure 11", "Figure 12", "Figure 13",
                       "Figure 14", "Figure 15"):
            assert figure in text, figure


class TestPackaging:
    def test_version_matches_pyproject(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_public_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), name

    def test_every_module_has_a_docstring(self):
        missing = []
        for info in pkgutil.walk_packages(repro.__path__,
                                          prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, missing

    @pytest.mark.parametrize("modname", DOCUMENTED_SURFACES)
    def test_every_exported_symbol_has_a_docstring(self, modname):
        """Exported functions, classes, and their public members."""
        module = importlib.import_module(modname)
        missing = []
        for name in _public_exports(module):
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue  # re-exported constants document themselves
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(name)
            if inspect.isclass(obj):
                for attr, value in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if inspect.isfunction(value) or isinstance(
                            value, property):
                        if not (value.__doc__ or "").strip():
                            missing.append(f"{name}.{attr}")
        assert not missing, f"{modname}: undocumented {missing}"

    def test_examples_are_runnable_scripts(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        for path in examples:
            text = path.read_text()
            assert '__name__ == "__main__"' in text, path.name
            assert text.lstrip().startswith('"""'), path.name
