"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory import Cache, CacheConfig


def small_cache(size=1024, assoc=2, line=64, latency=2):
    return Cache(CacheConfig(size, assoc, line, latency))


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(32 * 1024, 4, 64)
        assert cfg.num_sets == 128

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(3 * 64 * 2, 2, 64)  # 3 sets


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_same_line_hits(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x103F) is True    # same 64 B line
        assert cache.access(0x1040) is False   # next line

    def test_stats_accounting(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        cache.access(0x2000)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_mpki(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.stats.mpki(1000) == pytest.approx(1.0)
        assert cache.stats.mpki(0) == 0.0


class TestReplacement:
    def test_lru_eviction_order(self):
        # 2-way: fill a set with A and B, touch A, insert C -> B evicted.
        cache = small_cache(size=1024, assoc=2, line=64)  # 8 sets
        set_stride = 8 * 64
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)            # A most recent
        cache.access(c)            # evicts B
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_capacity_bounded(self):
        cache = small_cache(size=1024, assoc=2, line=64)
        for i in range(100):
            cache.access(i * 64)
        assert cache.resident_lines <= cache.capacity_lines


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(size=1024, assoc=2, line=64)
        set_stride = 8 * 64
        cache.access(0x0, write=True)
        cache.access(set_stride)
        cache.access(2 * set_stride)   # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(size=1024, assoc=2, line=64)
        set_stride = 8 * 64
        cache.access(0x0)
        cache.access(set_stride)
        cache.access(2 * set_stride)
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = small_cache(size=1024, assoc=2, line=64)
        cache.access(0x0)                 # clean fill
        cache.access(0x0, write=True)     # becomes dirty
        assert cache.flush() == 1

    def test_flush_reports_dirty_lines(self):
        cache = small_cache()
        cache.access(0x0, write=True)     # set 0
        cache.access(0x40, write=True)    # set 1
        cache.access(0x80)                # set 2, clean
        assert cache.flush() == 2
        assert cache.resident_lines == 0


class TestAuxiliaryOps:
    def test_probe_does_not_touch_stats(self):
        cache = small_cache()
        cache.access(0x1000)
        before = cache.stats.accesses
        assert cache.probe(0x1000) is True
        assert cache.probe(0x9999000) is False
        assert cache.stats.accesses == before

    def test_fill_installs_without_access(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert cache.stats.accesses == 0
        assert cache.access(0x1000) is True

    def test_invalidate_returns_dirtiness(self):
        cache = small_cache()
        cache.access(0x1000, write=True)
        assert cache.invalidate(0x1000) is True
        assert cache.invalidate(0x1000) is False
        assert cache.access(0x1000) is False
