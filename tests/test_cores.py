"""Unit tests for the three cycle-level core models."""


import pytest

from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.cores.functional_units import FUPool, SlotPool, fu_type_for
from repro.isa import Instruction, OpClass
from repro.memory import MemoryHierarchy
from repro.schedule import Schedule, ScheduleCache, ScheduleRecorder


def mem(core_id=0):
    return MemoryHierarchy().core_view(core_id)


def independent_alu_stream():
    seq = 0
    while True:
        yield Instruction(seq=seq, pc=0x1000 + (seq % 64) * 4,
                          opclass=OpClass.IALU, dst=4 + seq % 20,
                          srcs=(1, 2))
        seq += 1


def serial_chain_stream():
    seq = 0
    while True:
        yield Instruction(seq=seq, pc=0x1000 + (seq % 64) * 4,
                          opclass=OpClass.IALU, dst=5, srcs=(5,))
        seq += 1


class TestSlotPool:
    def test_capacity_per_cycle(self):
        pool = SlotPool(2)
        assert pool.earliest_free(0) == 0
        pool.reserve(0)
        pool.reserve(0)
        assert pool.earliest_free(0) == 1

    def test_span_reservation(self):
        pool = SlotPool(1)
        pool.reserve(3, span=4)   # busy cycles 3..6
        assert pool.earliest_free(3) == 7
        assert pool.earliest_free(0, span=3) == 0

    def test_span_scan_restarts_past_mid_window_conflict(self):
        # A busy cycle in the middle of the candidate window must
        # restart the scan just past the conflict, not one-by-one.
        pool = SlotPool(1)
        pool.reserve(2)
        assert pool.earliest_free(0, span=4) == 3

    def test_span_scan_walks_repeated_conflicts(self):
        # Alternating busy cycles: every window [c, c+1] conflicts at
        # its second slot until the pool runs out of reservations.
        pool = SlotPool(1)
        for busy in (1, 3, 5):
            pool.reserve(busy)
        assert pool.earliest_free(0, span=2) == 6

    def test_overlapping_span_reservations_accumulate(self):
        pool = SlotPool(2)
        pool.reserve(0, span=3)
        pool.reserve(0, span=3)      # cycles 0..2 now full
        assert pool.earliest_free(0, span=2) == 3
        assert pool.usage_at(2) == 2
        assert pool.usage_at(3) == 0

    def test_span_reservation_survives_pruning(self):
        # A long-span reservation written just before the prune
        # threshold trips must stay accurate for recent cycles.
        pool = SlotPool(1, prune_window=64)
        for c in range(0, 120, 2):
            pool.reserve(c)          # trips _prune at least once
        pool.reserve(200, span=8)    # busy 200..207
        assert pool.earliest_free(200) == 208
        assert pool.earliest_free(199, span=4) == 208
        assert pool.usage_at(207) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SlotPool(0)

    def test_pruning_keeps_recent(self):
        pool = SlotPool(1, prune_window=100)
        for c in range(0, 500, 2):
            pool.reserve(c)
        # Old entries may be pruned, recent ones must remain accurate.
        assert pool.usage_at(498) == 1
        assert pool.earliest_free(498) == 499


class TestFUPool:
    def test_width_bound(self):
        pool = FUPool(width=2)
        cycles = [pool.issue_at(OpClass.IALU, 0, 1) for _ in range(4)]
        assert cycles == [0, 0, 1, 1]

    def test_single_multiplier_serializes(self):
        pool = FUPool(width=3)
        c1 = pool.issue_at(OpClass.IMUL, 0, 3)
        c2 = pool.issue_at(OpClass.IMUL, 0, 3)
        assert c1 == 0 and c2 == 1   # pipelined: next cycle ok

    def test_divide_unpipelined(self):
        pool = FUPool(width=3)
        c1 = pool.issue_at(OpClass.IDIV, 0, 12)
        c2 = pool.issue_at(OpClass.IDIV, 0, 12)
        assert c1 == 0 and c2 == 12

    def test_fu_type_mapping(self):
        assert fu_type_for(OpClass.LOAD) == fu_type_for(OpClass.STORE)
        assert fu_type_for(OpClass.IALU) != fu_type_for(OpClass.FALU)


class TestOutOfOrderCore:
    def test_independent_work_near_width(self):
        core = OutOfOrderCore(mem())
        r = core.run(independent_alu_stream(), 20_000)
        assert r.ipc > 2.5

    def test_serial_chain_is_ipc_one(self):
        core = OutOfOrderCore(mem())
        r = core.run(serial_chain_stream(), 10_000)
        assert 0.9 < r.ipc <= 1.05

    def test_long_latency_chain(self):
        def muls():
            seq = 0
            while True:
                yield Instruction(seq=seq, pc=0x1000, opclass=OpClass.IMUL,
                                  dst=5, srcs=(5,))
                seq += 1
        r = OutOfOrderCore(mem()).run(muls(), 5_000)
        assert r.ipc == pytest.approx(1 / 3, rel=0.1)

    def test_reorders_around_stall(self):
        """Adjacent load-use pairs stall the InO; the OoO hides them."""
        def blocked():
            seq = 0
            while True:
                yield Instruction(seq=seq, pc=0x1000, opclass=OpClass.LOAD,
                                  dst=5, srcs=(1,),
                                  mem_addr=0x100000 + (seq * 64) % 4096)
                seq += 1
                # Immediate use: program order is hostile to in-order.
                yield Instruction(seq=seq, pc=0x1004, opclass=OpClass.IMUL,
                                  dst=6, srcs=(5,))
                seq += 1
                for _ in range(7):
                    yield Instruction(seq=seq, pc=0x1000 + 4 * (seq % 60),
                                      opclass=OpClass.IALU,
                                      dst=7 + seq % 10, srcs=(1,))
                    seq += 1
        r_ooo = OutOfOrderCore(mem(0)).run(blocked(), 10_000)
        r_ino = InOrderCore(mem(1)).run(blocked(), 10_000)
        assert r_ooo.ipc > r_ino.ipc * 1.2

    def test_mispredicts_counted(self):
        def noisy_branches():
            import random
            rng = random.Random(7)
            seq = 0
            while True:
                yield Instruction(seq=seq, pc=0x1000 + (seq % 16) * 4,
                                  opclass=OpClass.BRANCH, is_branch=True,
                                  taken=rng.random() < 0.5,
                                  target=0x1000)
                seq += 1
        r = OutOfOrderCore(mem()).run(noisy_branches(), 3_000)
        assert r.stats.mispredicts > 300

    def test_recording_populates_sc(self):
        from repro.workloads import make_benchmark
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc)
        core = OutOfOrderCore(mem(), recorder=rec)
        core.run(make_benchmark("hmmer", seed=3).stream(), 20_000)
        assert sc.num_entries > 0
        assert rec.memoized_writes > 0

    def test_result_counts(self):
        r = OutOfOrderCore(mem()).run(independent_alu_stream(), 1_000)
        assert r.instructions == 1_000
        assert r.cycles > 0
        assert r.energy_events["fetch"] == 1_000


class TestInOrderCore:
    def test_matches_ooo_on_independent_work(self):
        r_ino = InOrderCore(mem()).run(independent_alu_stream(), 20_000)
        assert r_ino.ipc > 2.5

    def test_matches_ooo_on_serial_chain(self):
        r = InOrderCore(mem()).run(serial_chain_stream(), 10_000)
        assert 0.9 < r.ipc <= 1.05

    def test_stall_on_use_allows_miss_overlap(self):
        """Independent missing loads with distant uses overlap."""
        def mlp_friendly():
            seq = 0
            while True:
                for c in range(4):
                    yield Instruction(
                        seq=seq, pc=0x1000 + (seq % 60) * 4,
                        opclass=OpClass.LOAD, dst=10 + c, srcs=(1,),
                        mem_addr=0x10000000 + seq * 4096)
                    seq += 1
                for c in range(4):
                    yield Instruction(
                        seq=seq, pc=0x1000 + (seq % 60) * 4,
                        opclass=OpClass.IALU, dst=20, srcs=(10 + c,))
                    seq += 1

        def mlp_hostile():
            seq = 0
            while True:
                for c in range(4):
                    yield Instruction(
                        seq=seq, pc=0x1000 + (seq % 60) * 4,
                        opclass=OpClass.LOAD, dst=10 + c, srcs=(1,),
                        mem_addr=0x10000000 + seq * 4096)
                    seq += 1
                    yield Instruction(
                        seq=seq, pc=0x1000 + (seq % 60) * 4,
                        opclass=OpClass.IALU, dst=20, srcs=(10 + c,))
                    seq += 1
        r_friendly = InOrderCore(mem(0)).run(mlp_friendly(), 4_000)
        r_hostile = InOrderCore(mem(1)).run(mlp_hostile(), 4_000)
        assert r_friendly.ipc > r_hostile.ipc

    def test_in_order_never_beats_ooo_on_benchmarks(self):
        from repro.workloads import make_benchmark
        for name in ("hmmer", "gobmk"):
            bench = make_benchmark(name, seed=2)
            r_ooo = OutOfOrderCore(mem(0)).run(bench.stream(), 15_000)
            r_ino = InOrderCore(mem(1)).run(bench.stream(), 15_000)
            assert r_ino.ipc <= r_ooo.ipc * 1.02

    def test_store_to_load_ordering(self):
        def st_ld():
            seq = 0
            while True:
                yield Instruction(seq=seq, pc=0x1000, opclass=OpClass.STORE,
                                  srcs=(1,), mem_addr=0x8000)
                seq += 1
                yield Instruction(seq=seq, pc=0x1004, opclass=OpClass.LOAD,
                                  dst=5, srcs=(2,), mem_addr=0x8000)
                seq += 1
        r = InOrderCore(mem()).run(st_ld(), 2_000)
        # Same-line dependence throttles well below width.
        assert r.ipc < 1.0


class TestOinOCore:
    def _producer_consumer(self, name, n=25_000, sc_bytes=None):
        from repro.workloads import make_benchmark
        bench = make_benchmark(name, seed=2)
        sc = ScheduleCache(sc_bytes)
        rec = ScheduleRecorder(sc)
        OutOfOrderCore(mem(0), recorder=rec).run(bench.stream(), n)
        r_oino = OinOCore(mem(1), sc).run(bench.stream(), n)
        r_ino = InOrderCore(mem(2)).run(bench.stream(), n)
        return r_oino, r_ino

    def test_replay_beats_plain_ino_on_memoizable(self):
        r_oino, r_ino = self._producer_consumer("hmmer")
        assert r_oino.stats.memoized_fraction > 0.8
        assert r_oino.ipc > r_ino.ipc * 1.1

    def test_empty_sc_degrades_to_ino(self):
        from repro.workloads import make_benchmark
        bench = make_benchmark("hmmer", seed=2)
        sc = ScheduleCache()
        r_oino = OinOCore(mem(0), sc).run(bench.stream(), 10_000)
        r_ino = InOrderCore(mem(1)).run(bench.stream(), 10_000)
        assert r_oino.stats.memoized_fraction == 0.0
        assert r_oino.ipc == pytest.approx(r_ino.ipc, rel=0.1)

    def test_finite_sc_memoizes_less_than_infinite(self):
        r_small, _ = self._producer_consumer("gcc", sc_bytes=1024)
        r_inf, _ = self._producer_consumer("gcc", sc_bytes=None)
        assert (r_small.stats.memoized_fraction
                <= r_inf.stats.memoized_fraction + 0.02)

    def test_unmemoizable_benchmark_low_replay(self):
        r_oino, _ = self._producer_consumer("astar")
        assert r_oino.stats.memoized_fraction < 0.4

    def test_alias_detection(self):
        insns = [
            Instruction(seq=0, pc=0x1000, opclass=OpClass.STORE,
                        srcs=(1,), mem_addr=0x8000),
            Instruction(seq=1, pc=0x1004, opclass=OpClass.LOAD, dst=5,
                        srcs=(2,), mem_addr=0x8000),
        ] + [
            Instruction(seq=2 + i, pc=0x1008 + 4 * i,
                        opclass=OpClass.IALU, dst=6, srcs=(1,))
            for i in range(8)
        ]
        from repro.schedule import Trace
        trace = Trace(start_pc=0x1000, path_hash=0, instructions=insns)
        # Load scheduled before the older same-line store: alias.
        bad = (1, 0) + tuple(range(2, 10))
        good = tuple(range(10))
        assert OinOCore._replay_aliases(trace, bad) is True
        assert OinOCore._replay_aliases(trace, good) is False

    def test_wrong_path_costs_abort(self):
        """A stored schedule for a different path aborts, not replays."""
        from repro.workloads import make_benchmark
        bench = make_benchmark("hmmer", seed=2)
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc)
        OutOfOrderCore(mem(0), recorder=rec).run(bench.stream(), 20_000)
        # Corrupt every stored path so lookups become wrong-path.
        schedules = sc.contents()
        sc.invalidate_all()
        for s in schedules:
            sc.insert(Schedule(start_pc=s.start_pc,
                               path_hash=s.path_hash ^ 0xDEAD,
                               issue_order=s.issue_order))
        core = OinOCore(mem(1), sc)
        r = core.run(bench.stream(), 20_000)
        assert r.stats.memoized_fraction == 0.0
        assert r.stats.trace_aborts > 0

    def test_launch_gate_suppresses_hopeless_speculation(self):
        """After enough wrong-path launches the gate stops aborting."""
        from repro.workloads import make_benchmark
        bench = make_benchmark("hmmer", seed=2)
        sc = ScheduleCache(None)
        rec = ScheduleRecorder(sc)
        OutOfOrderCore(mem(0), recorder=rec).run(bench.stream(), 20_000)
        schedules = sc.contents()
        sc.invalidate_all()
        for s in schedules:
            sc.insert(Schedule(start_pc=s.start_pc,
                               path_hash=s.path_hash ^ 0xDEAD,
                               issue_order=s.issue_order))
        r = OinOCore(mem(1), sc).run(bench.stream(), 20_000)
        # Gate engages after ~8 launches per pc: aborts must be far
        # fewer than the number of traces.
        assert r.stats.trace_aborts < r.stats.traces * 0.5
