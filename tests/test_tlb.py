"""Unit tests for the TLB model."""

import pytest

from repro.memory import TLB


class TestTLB:
    def test_cold_miss_then_hit(self):
        tlb = TLB(entries=4, walk_latency=20)
        assert tlb.access(0x8000) == 20
        assert tlb.access(0x8000) == 0

    def test_same_page_shares_translation(self):
        tlb = TLB(entries=4, walk_latency=20)
        tlb.access(0x8000)
        assert tlb.access(0x8FFF) == 0      # same 4 KB page
        assert tlb.access(0x9000) == 20     # next page

    def test_lru_replacement(self):
        tlb = TLB(entries=2, walk_latency=20)
        tlb.access(0x1000)
        tlb.access(0x2000)
        tlb.access(0x1000)                  # page 1 most recent
        tlb.access(0x3000)                  # evicts page 2
        assert tlb.access(0x1000) == 0
        assert tlb.access(0x2000) == 20

    def test_stats(self):
        tlb = TLB(entries=4)
        tlb.access(0x1000)
        tlb.access(0x1000)
        assert tlb.stats.accesses == 2
        assert tlb.stats.misses == 1
        assert tlb.stats.miss_rate == pytest.approx(0.5)

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.access(0x1000)
        tlb.access(0x2000)
        assert tlb.flush() == 2
        assert tlb.resident == 0
        assert tlb.access(0x1000) > 0

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLB(entries=0)

    def test_capacity_bound(self):
        tlb = TLB(entries=8)
        for page in range(100):
            tlb.access(page << 12)
        assert tlb.resident == 8

    def test_large_footprint_thrashes(self):
        """More hot pages than entries -> sustained misses (mcf-like)."""
        tlb = TLB(entries=4)
        for _ in range(3):
            for page in range(8):
                tlb.access(page << 12)
        assert tlb.stats.miss_rate > 0.9
