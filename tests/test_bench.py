"""Tests for the repro.bench subsystem and the ``mirage bench`` CLI.

Covers registry discovery, report schema round-trips, the --compare
threshold logic in both directions, and — the property the hot-path
optimizations lean on — bit-determinism of every benchmark's counter
totals across invocations.
"""

import json

import pytest

from repro.bench import (
    BENCHMARKS,
    BenchContext,
    Benchmark,
    DEFAULT_THRESHOLD,
    SCHEMA,
    compare_reports,
    get,
    names,
    read_report,
    register,
    run_benchmarks,
    write_report,
)
from repro.bench.registry import TIERS
from repro.cli import main


def make_report(label, bests, *, extra=None):
    """A minimal schema-valid report with given best times."""
    report = {
        "schema": SCHEMA,
        "label": label,
        "version": "0.0.0",
        "git_rev": None,
        "created": "2026-01-01T00:00:00",
        "machine": {},
        "repeats": 1,
        "warmup": 0,
        "quick": True,
        "benchmarks": {
            name: {
                "tier": "detailed",
                "description": name,
                "wall_seconds": [best],
                "best": best,
                "mean": best,
                "phases": {},
                "counters": {},
            }
            for name, best in bests.items()
        },
    }
    if extra:
        report.update(extra)
    return report


class TestRegistry:
    def test_standard_probes_are_registered(self):
        expected = {"detailed-slice", "oino-replay", "sim-cache",
                    "interval-engine", "memory-hierarchy", "runner-cache"}
        assert expected <= set(BENCHMARKS)

    def test_every_benchmark_has_valid_tier_and_description(self):
        for bench in BENCHMARKS.values():
            assert bench.tier in TIERS, bench.name
            assert len(bench.description) > 10, bench.name

    def test_detailed_tier_has_multiple_probes(self):
        detailed = [b for b in BENCHMARKS.values() if b.tier == "detailed"]
        assert len(detailed) >= 2

    def test_names_matches_registry_order(self):
        assert names() == list(BENCHMARKS)

    def test_get_unknown_name_raises_with_roster(self):
        with pytest.raises(KeyError, match="detailed-slice"):
            get("no-such-benchmark")

    def test_register_rejects_bad_tier_and_duplicates(self):
        with pytest.raises(ValueError, match="tier"):
            register("x", tier="bogus", description="d")(lambda ctx: None)
        with pytest.raises(ValueError, match="duplicate"):
            register("detailed-slice", tier="detailed",
                     description="d")(lambda ctx: None)

    def test_context_size_switches_on_quick(self):
        assert BenchContext(quick=False).size(100, 10) == 100
        assert BenchContext(quick=True).size(100, 10) == 10

    def test_benchmark_run_invokes_fn(self):
        seen = []
        bench = Benchmark(name="t", tier="infra", description="d",
                          fn=seen.append)
        ctx = BenchContext()
        bench.run(ctx)
        assert seen == [ctx]


class TestHarness:
    def test_report_schema_round_trip(self, tmp_path):
        report = run_benchmarks(["memory-hierarchy"], repeats=2, warmup=0,
                                quick=True, label="t")
        path = write_report(report, tmp_path / "BENCH_t.json")
        back = read_report(path)
        assert back == json.loads(json.dumps(report))
        assert back["schema"] == SCHEMA
        assert back["label"] == "t"
        entry = back["benchmarks"]["memory-hierarchy"]
        assert len(entry["wall_seconds"]) == 2
        assert entry["best"] == min(entry["wall_seconds"])
        assert entry["tier"] == "detailed"
        assert entry["counters"]["mem.accesses"] == 30_000
        assert "accesses" in entry["phases"]

    def test_read_report_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="schema"):
            read_report(path)

    def test_run_benchmarks_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_benchmarks(["memory-hierarchy"], repeats=0)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_counter_totals_are_deterministic(self, name):
        """Fixed seeds: two fresh invocations must agree bit-for-bit.

        ``simcache.*`` counters are excluded for probes that share the
        process-global SliceMemo: the first invocation misses where the
        second hits.  Every *simulation* counter still matching is
        precisely the slice-replay identity guarantee.
        """
        def totals(ctx):
            return {k: v for k, v in ctx.telemetry.counters.items()
                    if not k.startswith("simcache.")}

        first = BenchContext(quick=True)
        second = BenchContext(quick=True)
        BENCHMARKS[name].run(first)
        BENCHMARKS[name].run(second)
        assert totals(first) == totals(second)
        assert first.telemetry.counters, name


class TestCompare:
    def test_flags_regression_beyond_threshold(self):
        old = make_report("old", {"a": 1.0, "b": 1.0})
        new = make_report("new", {"a": 1.25, "b": 1.05})
        comparison = compare_reports(old, new, threshold=0.20)
        assert [d.name for d in comparison.regressions] == ["a"]
        assert not comparison.ok
        assert "REGRESSED" in comparison.summary()

    def test_flags_improvement_beyond_threshold(self):
        old = make_report("old", {"a": 1.0, "b": 1.0})
        new = make_report("new", {"a": 0.5, "b": 0.95})
        comparison = compare_reports(old, new, threshold=0.20)
        assert [d.name for d in comparison.improvements] == ["a"]
        assert comparison.ok

    def test_within_threshold_is_ok_both_ways(self):
        old = make_report("old", {"a": 1.0})
        for best in (1.19, 0.85):
            comparison = compare_reports(
                old, make_report("new", {"a": best}), threshold=0.20)
            assert comparison.ok
            assert not comparison.improvements

    def test_threshold_boundary_is_exclusive(self):
        old = make_report("old", {"a": 1.0})
        at = compare_reports(old, make_report("n", {"a": 1.20}),
                             threshold=0.20)
        assert at.ok  # exactly at the threshold is tolerated
        over = compare_reports(old, make_report("n", {"a": 1.2001}),
                               threshold=0.20)
        assert not over.ok

    def test_disjoint_benchmarks_are_reported_not_dropped(self):
        old = make_report("old", {"a": 1.0, "gone": 1.0})
        new = make_report("new", {"a": 1.0, "fresh": 1.0})
        comparison = compare_reports(old, new)
        assert comparison.only_old == ["gone"]
        assert comparison.only_new == ["fresh"]
        assert "gone" in comparison.summary()

    def test_summary_sorts_worst_regression_first(self):
        # Report order is registration order; the summary table must
        # lead with the biggest slowdown so CI logs surface it.
        old = make_report("old", {"a": 1.0, "b": 1.0, "c": 1.0})
        new = make_report("new", {"a": 1.1, "b": 2.0, "c": 0.5})
        summary = compare_reports(old, new).summary()
        rows = [line.split()[0] for line in summary.splitlines()
                if line.split() and line.split()[0] in ("a", "b", "c")]
        assert rows == ["b", "a", "c"]

    def test_speedup_and_ratio_are_reciprocal(self):
        old = make_report("old", {"a": 2.0})
        new = make_report("new", {"a": 1.0})
        delta = compare_reports(old, new).deltas[0]
        assert delta.speedup == pytest.approx(2.0)
        assert delta.ratio == pytest.approx(0.5)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(make_report("o", {}), make_report("n", {}),
                            threshold=-0.1)

    def test_default_threshold_is_twenty_percent(self):
        assert DEFAULT_THRESHOLD == 0.20


def make_sampled_report(label, samples_by_name):
    """A schema-valid report with explicit wall samples per benchmark."""
    report = make_report(label, {})
    report["benchmarks"] = {
        name: {
            "tier": "detailed",
            "description": name,
            "wall_seconds": list(samples),
            "best": min(samples),
            "mean": sum(samples) / len(samples),
            "phases": {},
            "counters": {},
        }
        for name, samples in samples_by_name.items()
    }
    return report


class TestNoiseAwareCompare:
    def test_noisy_shift_within_sigma_is_not_a_regression(self):
        # Means differ by 30% (over the 20% threshold) but the samples
        # are so scattered the shift is within the 2-sigma noise floor.
        old = make_sampled_report("old", {"a": [0.6, 1.0, 1.4]})
        new = make_sampled_report("new", {"a": [0.9, 1.3, 1.7]})
        comparison = compare_reports(old, new, threshold=0.20)
        delta = comparison.deltas[0]
        assert delta.ratio > 1.20
        assert delta.noise_floor > delta.new_mean - delta.old_mean
        assert comparison.ok

    def test_consistent_shift_beyond_sigma_is_a_regression(self):
        old = make_sampled_report("old", {"a": [1.00, 1.01, 0.99]})
        new = make_sampled_report("new", {"a": [1.30, 1.31, 1.29]})
        comparison = compare_reports(old, new, threshold=0.20)
        assert not comparison.ok
        assert comparison.deltas[0].regressed

    def test_improvement_also_gated_by_noise(self):
        old = make_sampled_report("old", {"a": [0.7, 1.0, 1.3]})
        new = make_sampled_report("new", {"a": [0.5, 0.8, 1.1]})
        comparison = compare_reports(old, new, threshold=0.20)
        assert not comparison.improvements
        steady = compare_reports(
            make_sampled_report("old", {"a": [1.00, 1.01, 0.99]}),
            make_sampled_report("new", {"a": [0.70, 0.71, 0.69]}),
            threshold=0.20)
        assert steady.improvements

    def test_single_sample_degenerates_to_pure_threshold(self):
        # repeats=1 reports carry one sample: std is zero, so the
        # verdict is the historical mean-ratio threshold.
        old = make_report("old", {"a": 1.0})
        new = make_report("new", {"a": 1.25})
        comparison = compare_reports(old, new, threshold=0.20)
        assert comparison.deltas[0].noise_floor == 0.0
        assert not comparison.ok

    def test_pre_noise_reports_without_samples_still_compare(self):
        old = make_report("old", {"a": 1.0})
        del old["benchmarks"]["a"]["wall_seconds"]
        new = make_report("new", {"a": 1.5})
        comparison = compare_reports(old, new, threshold=0.20)
        assert comparison.deltas[0].old_mean == 1.0
        assert not comparison.ok

    def test_summary_shows_mean_and_spread(self):
        old = make_sampled_report("old", {"a": [1.0, 1.2]})
        new = make_sampled_report("new", {"a": [1.0, 1.2]})
        summary = compare_reports(old, new).summary()
        assert "±" in summary and "x 1.00" in summary


class TestWelchGate:
    def test_ten_percent_regression_is_significant(self):
        # The acceptance case: a tight, consistent 10% slowdown is
        # below the 20% fail threshold but must be *flagged* as a
        # statistically significant shift.
        old = make_sampled_report(
            "old", {"a": [1.000, 1.002, 0.998, 1.001, 0.999]})
        new = make_sampled_report(
            "new", {"a": [1.100, 1.102, 1.098, 1.101, 1.099]})
        comparison = compare_reports(old, new, threshold=0.20)
        delta = comparison.deltas[0]
        assert delta.p_value < 0.05
        assert delta.significant
        assert not delta.regressed  # sub-threshold: warn, don't fail
        assert comparison.ok
        assert comparison.significant_shifts
        assert "significant" in comparison.summary()

    def test_resampled_identical_runs_stay_silent(self):
        # Two draws from the same distribution: the gate must not
        # manufacture significance out of noise.
        old = make_sampled_report("old", {"a": [1.00, 1.04, 0.96]})
        new = make_sampled_report("new", {"a": [1.02, 0.98, 1.01]})
        comparison = compare_reports(old, new, threshold=0.20)
        delta = comparison.deltas[0]
        assert delta.p_value >= 0.05
        assert not delta.significant
        assert not comparison.significant_shifts
        assert comparison.ok

    def test_significant_regression_beyond_threshold_fails(self):
        old = make_sampled_report("old", {"a": [1.00, 1.01, 0.99]})
        new = make_sampled_report("new", {"a": [1.30, 1.31, 1.29]})
        comparison = compare_reports(old, new, threshold=0.20)
        assert comparison.deltas[0].significant
        assert comparison.deltas[0].regressed
        assert not comparison.ok

    def test_single_sample_keeps_threshold_semantics(self):
        # One sample carries no spread, so Welch degenerates: any
        # mean shift is treated as significant and the historical
        # pure-threshold verdict is preserved.
        regression = compare_reports(
            make_report("old", {"a": 1.0}),
            make_report("new", {"a": 1.5}), threshold=0.20)
        assert regression.deltas[0].significant
        assert not regression.ok
        identical = compare_reports(
            make_report("old", {"a": 1.0}),
            make_report("new", {"a": 1.0}), threshold=0.20)
        assert not identical.deltas[0].significant
        assert identical.ok

    def test_p_value_matches_known_table(self):
        from repro.bench.compare import t_two_sided_p

        # t=2.0 at df=10 -> p=0.0734 (standard t-table value).
        assert t_two_sided_p(2.0, 10.0) == pytest.approx(
            0.0734, abs=2e-4)
        assert t_two_sided_p(0.0, 10.0) == pytest.approx(1.0)


class TestCLI:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in BENCHMARKS:
            assert name in out

    def test_bench_run_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_ci.json"
        code = main(["bench", "memory-hierarchy", "--quick",
                     "--repeat", "1", "--warmup", "0",
                     "--label", "ci", "--output", str(out_path)])
        assert code == 0
        report = read_report(out_path)
        assert set(report["benchmarks"]) == {"memory-hierarchy"}
        assert report["quick"] is True
        assert "report ->" in capsys.readouterr().out

    def test_bench_unknown_name_errors(self):
        with pytest.raises(SystemExit):
            main(["bench", "definitely-not-registered"])

    def test_compare_exit_codes_both_ways(self, tmp_path, capsys):
        old = write_report(make_report("old", {"a": 1.0}),
                           tmp_path / "old.json")
        slow = write_report(make_report("slow", {"a": 2.0}),
                            tmp_path / "slow.json")
        fast = write_report(make_report("fast", {"a": 0.5}),
                            tmp_path / "fast.json")
        assert main(["bench", "--compare", str(old), str(slow)]) == 1
        assert main(["bench", "--compare", str(old), str(fast)]) == 0
        assert main(["bench", "--compare", str(old), str(slow),
                     "--warn-only"]) == 0
        # A generous threshold tolerates the 2x slowdown.
        assert main(["bench", "--compare", str(old), str(slow),
                     "--threshold", "1.5"]) == 0
        capsys.readouterr()

    def test_compare_unreadable_report_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        good = write_report(make_report("g", {"a": 1.0}),
                            tmp_path / "good.json")
        assert main(["bench", "--compare", str(bad), str(good)]) == 2
        assert "mirage bench:" in capsys.readouterr().err
