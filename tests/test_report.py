"""Tests for the reporting/export utilities."""

import csv
import json


from repro.experiments import fig5_bzip2_timeline, fig6_area
from repro.report import ascii_timeline, rows_to_csv, summary_table, to_json


class TestExport:
    def test_json_roundtrip(self, tmp_path):
        result = fig6_area.run()
        path = to_json(result, tmp_path / "fig6.json")
        loaded = json.loads(path.read_text())
        assert loaded["rows"][0]["n"] == 4

    def test_csv_rows(self, tmp_path):
        result = fig6_area.run()
        path = rows_to_csv(result["rows"], tmp_path / "fig6.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert set(rows[0]) == {"n", "homo_ino", "mirage", "traditional"}

    def test_csv_empty(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""


class TestAsciiTimeline:
    def test_renders_fig5_series(self):
        result = fig5_bzip2_timeline.run(intervals=120)
        chart = ascii_timeline(result["series"], title="bzip2")
        assert "bzip2" in chart
        assert "o" in chart or "." in chart
        # Height: title + top axis + 12 rows + bottom axis + legend.
        assert len(chart.splitlines()) == 16

    def test_marks_ooo_points(self):
        series = [
            {"interval": 0, "ipc": 1.0, "on_ooo": True},
            {"interval": 1, "ipc": 0.5, "on_ooo": False},
        ]
        chart = ascii_timeline(series)
        assert "o" in chart and "." in chart

    def test_empty_series(self):
        assert "empty" in ascii_timeline([])

    def test_flat_series_does_not_crash(self):
        series = [{"interval": i, "ipc": 1.0, "on_ooo": False}
                  for i in range(5)]
        assert "." in ascii_timeline(series)


class TestSummaryTable:
    def test_scalars_only(self):
        table = summary_table({"stp": 0.84, "name": "mirage",
                               "rows": [1, 2]})
        assert "stp" in table and "0.840" in table
        assert "rows" not in table

    def test_no_scalars(self):
        assert "(no scalar fields)" in summary_table({"rows": []})
