"""End-to-end integration tests across the whole stack.

These exercise the full producer/consumer story on the detailed tier
(OoO memoizes -> SC ships over the bus -> OinO replays) and the full
arbitrated CMP on the interval tier, checking the invariants the paper
builds its argument on.
"""


import pytest

from repro.arbiter import MaxSTPArbitrator, SCMPKIArbitrator
from repro.characterize import analytic_model
from repro.cmp import ClusterConfig
from repro.cmp.system import CMPSystem, run_homo
from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.memory import MemoryHierarchy, SharedBus
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import make_benchmark, standard_mixes


class TestProducerConsumerPipeline:
    """The core Mirage mechanism, end to end on the detailed tier."""

    def _pipeline(self, name, n=25_000, capacity=8 * 1024):
        bench = make_benchmark(name, seed=4)
        hier = MemoryHierarchy()
        # Producer memoizes into its SC.
        producer_sc = ScheduleCache(capacity)
        recorder = ScheduleRecorder(producer_sc)
        ooo = OutOfOrderCore(hier.core_view(0), recorder=recorder)
        r_ooo = ooo.run(bench.stream(), n)
        # SC contents transfer over the shared bus (migration).
        consumer_sc = ScheduleCache(capacity)
        contents = producer_sc.contents()
        payload = sum(s.storage_bytes for s in contents)
        hier.bus.transfer(r_ooo.cycles, payload)
        consumer_sc.load_contents(contents)
        # Consumer replays.
        oino = OinOCore(hier.core_view(1), consumer_sc)
        r_oino = oino.run(bench.stream(), n)
        r_ino = InOrderCore(hier.core_view(2)).run(bench.stream(), n)
        return r_ooo, r_oino, r_ino, hier

    def test_full_mirage_flow_memoizable(self):
        r_ooo, r_oino, r_ino, hier = self._pipeline("hmmer")
        # Performance hierarchy: OoO >= OinO > InO.
        assert r_ooo.ipc >= r_oino.ipc * 0.95
        assert r_oino.ipc > r_ino.ipc
        # The transferred schedules actually got used.
        assert r_oino.stats.memoized_fraction > 0.5
        # And the bus saw the SC transfer.
        assert hier.bus.stats.bytes_moved > 0

    def test_full_mirage_flow_unmemoizable(self):
        _r_ooo, r_oino, r_ino, _ = self._pipeline("astar")
        # astar gains little; OinO degenerates to InO-like behaviour.
        assert r_oino.ipc == pytest.approx(r_ino.ipc, rel=0.35)

    def test_finite_sc_respects_capacity(self):
        bench = make_benchmark("gcc", seed=4)
        sc = ScheduleCache(8 * 1024)
        rec = ScheduleRecorder(sc)
        OutOfOrderCore(
            MemoryHierarchy().core_view(0), recorder=rec
        ).run(bench.stream(), 30_000)
        assert sc.used_bytes <= 8 * 1024

    def test_sc_misses_tracked_on_both_sides(self):
        r_ooo, r_oino, _r_ino, _ = self._pipeline("bzip2")
        assert r_ooo.stats.traces > 0
        assert r_oino.stats.sc_trace_hits + r_oino.stats.sc_trace_misses \
            == r_oino.stats.traces
        # SC-MPKI is measurable on both producer and consumer.
        assert r_ooo.stats.sc_mpki() >= 0.0
        assert r_oino.stats.sc_mpki() >= 0.0

    def test_oracle_beats_finite_sc(self):
        _, r_small, _, _ = self._pipeline("gcc", capacity=1024)
        _, r_oracle, _, _ = self._pipeline("gcc", capacity=None)
        assert (r_oracle.stats.memoized_fraction
                >= r_small.stats.memoized_fraction - 0.02)


class TestScaledCMPConsistency:
    """Interval tier: cross-configuration invariants."""

    def test_mirage_between_homo_baselines(self):
        names = standard_mixes(8, seed=11)[10].benchmarks
        models = [analytic_model(n) for n in names]
        cfg = ClusterConfig(n_consumers=8, n_producers=1, mirage=True)
        mirage = CMPSystem(cfg, models, SCMPKIArbitrator()).run()
        homo_ooo = run_homo(models, kind="ooo", config=cfg)
        homo_ino = run_homo(models, kind="ino", config=cfg)
        assert homo_ino.stp < mirage.stp <= homo_ooo.stp + 1e-9

    def test_more_producers_help_traditional(self):
        names = standard_mixes(8, seed=11)[12].benchmarks
        models = [analytic_model(n) for n in names]
        one = CMPSystem(
            ClusterConfig(n_consumers=8, n_producers=1, mirage=False),
            models, MaxSTPArbitrator()).run()
        three = CMPSystem(
            ClusterConfig(n_consumers=8, n_producers=3, mirage=False),
            models, MaxSTPArbitrator()).run()
        assert three.stp > one.stp

    def test_hpd_mix_uses_ooo_more_than_lpd_mix(self):
        mixes = standard_mixes(8, seed=2017)
        hpd = next(m for m in mixes if m.category == "HPD")
        lpd = next(m for m in mixes if m.category == "LPD")
        def util(mix):
            models = [analytic_model(n) for n in mix]
            cfg = ClusterConfig(n_consumers=8, n_producers=1, mirage=True)
            return CMPSystem(cfg, models,
                             SCMPKIArbitrator()).run().ooo_active_fraction
        assert util(hpd) > util(lpd)

    def test_migration_overhead_small_at_default_scale(self):
        names = standard_mixes(8, seed=3)[0].benchmarks
        models = [analytic_model(n) for n in names]
        cfg = ClusterConfig(n_consumers=8, n_producers=1, mirage=True)
        res = CMPSystem(cfg, models, SCMPKIArbitrator()).run()
        total = res.total_cycles * len(models)
        overhead = sum(res.migration_cost_cycles.values()) / total
        assert overhead < 0.02


class TestBusIntegration:
    def test_migrations_share_one_bus(self):
        bus = SharedBus()
        s1 = bus.transfer(0, 8192)
        s2 = bus.transfer(0, 8192)
        assert s2[0] >= s1[1]

    def test_detailed_cores_share_l2_through_bus_hierarchy(self):
        hier = MemoryHierarchy()
        bench = make_benchmark("libquantum", seed=5)
        InOrderCore(hier.core_view(0)).run(bench.stream(), 5_000)
        l2_after_first = hier.l2.stats.misses
        # Second core touches the same data: L2 is shared and warm.
        InOrderCore(hier.core_view(1)).run(bench.stream(), 5_000)
        second_core_misses = hier.l2.stats.misses - l2_after_first
        assert second_core_misses < l2_after_first
