#!/usr/bin/env python
"""CI smoke for the experiment service: the full serve/submit/tail
loop as a user would run it, plus a result-identity check.

The script:

1. starts ``mirage serve`` as a real background process (two
   workers, scratch service/cache directories),
2. submits ``table1 --quick`` through ``mirage submit --porcelain``,
3. follows it with ``mirage tail`` until the job completes,
4. asserts the streamed result is identical (as canonical JSON) to
   ``run_experiment("table1", quick=True)`` executed directly in this
   process, and
5. shuts the server down cleanly through ``mirage shutdown`` and
   checks it exits 0.

Run as ``python scripts/service_smoke.py --src src``.  Everything
lives under a temp directory; nothing persists.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def wait_for(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    raise SystemExit(f"service_smoke: timed out waiting for {message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default="src",
                        help="package root to put on PYTHONPATH")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall budget for the submitted job")
    args = parser.parse_args()

    src = str(Path(args.src).resolve())
    sys.path.insert(0, src)

    scratch = Path(tempfile.mkdtemp(prefix="mirage-service-smoke-"))
    service_dir = scratch / "svc"
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["MIRAGE_SERVICE_DIR"] = str(service_dir)
    env["MIRAGE_CACHE_DIR"] = str(scratch / "cache")

    mirage = [sys.executable, "-m", "repro"]
    print(f"[smoke] scratch: {scratch}", flush=True)
    serve = subprocess.Popen([*mirage, "serve", "--workers", "2"],
                             env=env)
    try:
        wait_for(lambda: (service_dir / "server.json").exists(),
                 30.0, "server.json (server startup)")

        job_id = subprocess.check_output(
            [*mirage, "submit", "table1", "--quick", "--porcelain"],
            env=env, text=True).strip()
        print(f"[smoke] submitted job {job_id}", flush=True)

        tail = subprocess.run([*mirage, "tail", job_id], env=env,
                              timeout=args.timeout)
        if tail.returncode != 0:
            raise SystemExit(
                f"service_smoke: mirage tail exited {tail.returncode}")

        listing = subprocess.check_output([*mirage, "jobs"], env=env,
                                          text=True)
        print(f"[smoke] jobs:\n{listing}", flush=True)
        if job_id not in listing or "done" not in listing:
            raise SystemExit("service_smoke: job missing from listing")

        # Identity: the streamed result must match a direct run.
        from repro.api import run_experiment
        from repro.service import ServiceClient

        client = ServiceClient(service_dir=service_dir)
        streamed = client.result(job_id, timeout=args.timeout)
        direct = run_experiment("table1", quick=True)
        canonical = dict(separators=(",", ":"), sort_keys=True)
        streamed_json = json.dumps(streamed[0], **canonical)
        direct_json = json.dumps(json.loads(json.dumps(direct)),
                                 **canonical)
        if streamed_json != direct_json:
            print(f"[smoke] streamed: {streamed_json[:400]}...",
                  file=sys.stderr)
            print(f"[smoke] direct:   {direct_json[:400]}...",
                  file=sys.stderr)
            raise SystemExit(
                "service_smoke: streamed result differs from a "
                "direct run_experiment('table1', quick=True)")
        print("[smoke] streamed result == direct run", flush=True)

        shutdown = subprocess.run([*mirage, "shutdown"], env=env,
                                  timeout=60)
        if shutdown.returncode != 0:
            raise SystemExit("service_smoke: mirage shutdown failed")
        serve.wait(timeout=60)
        if serve.returncode != 0:
            raise SystemExit(
                f"service_smoke: serve exited {serve.returncode}")
        if (service_dir / "server.json").exists():
            raise SystemExit(
                "service_smoke: server.json left behind after "
                "a clean shutdown")
        print("[smoke] clean shutdown — OK", flush=True)
        return 0
    finally:
        if serve.poll() is None:
            serve.terminate()
            try:
                serve.wait(timeout=10)
            except subprocess.TimeoutExpired:
                serve.kill()


if __name__ == "__main__":
    raise SystemExit(main())
