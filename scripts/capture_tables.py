#!/usr/bin/env python3
"""Capture the tier-identity tables for byte-exact comparison.

Runs the experiments whose output the engine/backend refactors must
never change — ``table1``, ``fig7``, and ``tier-validation`` — in
``--quick --no-cache`` mode, strips the wall-clock-dependent runner
chatter (``[runner] ...`` stats and ``--- <name> done in X.Xs ---``
footers), and writes one ``<experiment>.txt`` per experiment.

CI runs this script twice (PR tree vs base tree) and fails the
tier-identity gate on any byte difference::

    python scripts/capture_tables.py --src src --out /tmp/pr
    python scripts/capture_tables.py --src base-tree/src --out /tmp/base
    diff -ru /tmp/base /tmp/pr
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

#: The experiments whose printed tables must stay bit-identical.
EXPERIMENTS = ("table1", "fig7", "tier-validation")


def is_volatile(line: str) -> bool:
    """True for timing lines that legitimately vary run to run."""
    if line.startswith("[runner] "):
        return True
    return line.startswith("--- ") and " done in " in line


def capture(experiment: str, src: Path) -> str:
    """One experiment's table, with volatile timing lines stripped."""
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", experiment,
         "--quick", "--no-cache"],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"capture_tables: {experiment} exited {proc.returncode}")
    lines = [line for line in proc.stdout.splitlines()
             if not is_volatile(line)]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: capture every experiment into ``--out``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--src", default="src",
        help="the src/ tree to put on PYTHONPATH (default: src)")
    parser.add_argument(
        "--out", required=True,
        help="directory to write <experiment>.txt files into")
    parser.add_argument(
        "--experiments", nargs="*", default=list(EXPERIMENTS),
        help=f"experiments to capture (default: {' '.join(EXPERIMENTS)})")
    args = parser.parse_args(argv)

    src = Path(args.src).resolve()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for experiment in args.experiments:
        text = capture(experiment, src)
        path = out / f"{experiment}.txt"
        path.write_text(text)
        print(f"[capture] {experiment}: {len(text.splitlines())} lines "
              f"-> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
