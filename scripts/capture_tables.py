#!/usr/bin/env python3
"""Capture the tier-identity tables for byte-exact comparison.

Runs the experiments whose output the engine/backend refactors must
never change — ``table1``, ``fig7``, and ``tier-validation`` — in
``--quick --no-cache`` mode, strips the wall-clock-dependent runner
chatter (``[runner] ...`` stats and ``--- <name> done in X.Xs ---``
footers), and writes one ``<experiment>.txt`` per experiment.

CI runs this script twice (PR tree vs base tree) and fails the
tier-identity gate on any byte difference::

    python scripts/capture_tables.py --src src --out /tmp/pr
    python scripts/capture_tables.py --src base-tree/src --out /tmp/base
    diff -ru /tmp/base /tmp/pr

Three single-tree gate modes capture the same experiments under a
flipped switch and fail on any byte difference — perf layers must
never change simulation output:

* ``--simcache-gate`` — slice memoization on vs off.
* ``--vector-gate`` — the analytic tier's vectorized kernel forced on
  vs off (``MIRAGE_VECTOR``).
* ``--disk-smoke`` — two *separate processes* against one disk slice
  store (``MIRAGE_SIM_CACHE_DISK=1``): the second replays what the
  first simulated and must print the identical table.
* ``--backend-smoke`` — ``backend-matrix --quick`` twice: every
  registered backend must appear as a leg row and the two runs must
  print byte-identical tables (determinism across the whole roster).
* ``--pool-gate`` — the tier-identity experiments under ``--jobs 2``
  with the warm worker pool on vs off (``MIRAGE_WARM_POOL``): the
  pool and its shared-memory transport must never change a byte of
  simulation output.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

#: The experiments whose printed tables must stay bit-identical.
EXPERIMENTS = ("table1", "fig7", "tier-validation")

#: The experiments exercising the detailed tier, i.e. the ones whose
#: output the ``--simcache-gate`` and ``--disk-smoke`` modes compare
#: under the slice-memo toggles.
SIMCACHE_EXPERIMENTS = ("tier-validation",)

#: The experiments exercising the interval tier's analytic backend —
#: the ones the ``--vector-gate`` mode captures with the vectorized
#: kernel forced on vs off.
VECTOR_EXPERIMENTS = ("table1", "fig7", "tier-validation")


def is_volatile(line: str) -> bool:
    """True for timing lines that legitimately vary run to run."""
    if line.startswith("[runner] "):
        return True
    return line.startswith("--- ") and " done in " in line


def capture(experiment: str, src: Path,
            extra_env: dict[str, str] | None = None,
            extra_args: tuple[str, ...] = ()) -> str:
    """One experiment's table, with volatile timing lines stripped."""
    env = dict(os.environ, PYTHONPATH=str(src))
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", experiment,
         "--quick", "--no-cache", *extra_args],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"capture_tables: {experiment} exited {proc.returncode}")
    lines = [line for line in proc.stdout.splitlines()
             if not is_volatile(line)]
    return "\n".join(lines) + "\n"


def env_gate(src: Path, out: Path, experiments: list[str],
             var: str, tag: str) -> None:
    """Capture each experiment with ``var`` set to ``1`` and ``0`` and
    fail on any byte difference.

    The toggles go through environment variables rather than CLI flags
    so the same invocation works against older src trees that predate
    the corresponding flags (``--no-sim-cache``, ``vectorize=``).
    """
    for experiment in experiments:
        on = capture(experiment, src, {var: "1"})
        off = capture(experiment, src, {var: "0"})
        (out / f"{experiment}.{tag}-on.txt").write_text(on)
        (out / f"{experiment}.{tag}-off.txt").write_text(off)
        if on != off:
            raise SystemExit(
                f"capture_tables: {experiment} differs between "
                f"{var}=1 and =0 — a perf layer changed simulation "
                f"output (see {out})")
        print(f"[{tag}-gate] {experiment}: {var} on/off "
              f"byte-identical ({len(on.splitlines())} lines)")


def disk_smoke(src: Path, out: Path, experiments: list[str]) -> None:
    """Run each experiment twice — two processes, one disk slice
    store — and fail unless the warm run reproduces the cold table.

    The second process starts with an empty in-memory memo, so any
    divergence means the disk store replayed a slice wrong (or the
    store silently failed and the gate still holds by re-simulation —
    identity is the contract either way).
    """
    cache_dir = out / "disk-smoke-cache"
    env = {"MIRAGE_SIM_CACHE_DISK": "1",
           "MIRAGE_CACHE_DIR": str(cache_dir)}
    for experiment in experiments:
        cold = capture(experiment, src, env)
        warm = capture(experiment, src, env)
        (out / f"{experiment}.disk-cold.txt").write_text(cold)
        (out / f"{experiment}.disk-warm.txt").write_text(warm)
        if cold != warm:
            raise SystemExit(
                f"capture_tables: {experiment} differs between the "
                f"cold and warm disk-memo processes — the slice store "
                f"replayed different results (see {out})")
        print(f"[disk-smoke] {experiment}: cold/warm processes "
              f"byte-identical ({len(cold.splitlines())} lines)")


def pool_gate(src: Path, out: Path, experiments: list[str]) -> None:
    """Capture each experiment under ``--jobs 2`` with the warm pool
    on and off and fail on any byte difference.

    With the pool off the runner takes the legacy per-call executor
    path, so this compares the entire new dispatch stack — warm
    workers, shared-memory transport, LPT ordering — against the old
    one on the same work.
    """
    for experiment in experiments:
        on = capture(experiment, src, {"MIRAGE_WARM_POOL": "1"},
                     ("--jobs", "2"))
        off = capture(experiment, src, {"MIRAGE_WARM_POOL": "0"},
                      ("--jobs", "2"))
        (out / f"{experiment}.pool-on.txt").write_text(on)
        (out / f"{experiment}.pool-off.txt").write_text(off)
        if on != off:
            raise SystemExit(
                f"capture_tables: {experiment} differs between "
                f"MIRAGE_WARM_POOL=1 and =0 under --jobs 2 — the warm "
                f"pool changed simulation output (see {out})")
        print(f"[pool-gate] {experiment}: warm pool on/off "
              f"byte-identical ({len(on.splitlines())} lines)")


#: Backend names whose leg rows ``--backend-smoke`` requires in the
#: ``backend-matrix`` output (the built-in registry roster).
BACKEND_ROSTER = ("analytic", "detailed", "cgooo", "ldt")


def backend_smoke(src: Path, out: Path) -> None:
    """Run ``backend-matrix --quick`` twice; require the full roster
    in the output and byte-identical tables between the runs.

    One mode covers two promises at once: every built-in backend
    still registers and runs under the unchanged engine, and the
    whole matrix (cycle tiers included) is deterministic.
    """
    first = capture("backend-matrix", src)
    second = capture("backend-matrix", src)
    (out / "backend-matrix.first.txt").write_text(first)
    (out / "backend-matrix.second.txt").write_text(second)
    missing = [name for name in BACKEND_ROSTER if name not in first]
    if missing:
        raise SystemExit(
            f"capture_tables: backend-matrix output is missing leg "
            f"rows for: {', '.join(missing)} (see {out})")
    if first != second:
        raise SystemExit(
            "capture_tables: backend-matrix printed different tables "
            f"on two identical runs — a backend is nondeterministic "
            f"(see {out})")
    print(f"[backend-smoke] backend-matrix: {len(BACKEND_ROSTER)} "
          f"backends present, two runs byte-identical "
          f"({len(first.splitlines())} lines)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: capture every experiment into ``--out``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--src", default="src",
        help="the src/ tree to put on PYTHONPATH (default: src)")
    parser.add_argument(
        "--out", required=True,
        help="directory to write <experiment>.txt files into")
    parser.add_argument(
        "--experiments", nargs="*", default=list(EXPERIMENTS),
        help=f"experiments to capture (default: {' '.join(EXPERIMENTS)})")
    parser.add_argument(
        "--simcache-gate", action="store_true",
        help="capture the detailed tier twice (MIRAGE_SIM_CACHE=1/0) "
             "and fail on any byte difference instead of the normal "
             "capture")
    parser.add_argument(
        "--vector-gate", action="store_true",
        help="capture the interval-tier experiments twice "
             "(MIRAGE_VECTOR=1/0) and fail on any byte difference")
    parser.add_argument(
        "--disk-smoke", action="store_true",
        help="run the detailed tier in two processes sharing one disk "
             "slice store (MIRAGE_SIM_CACHE_DISK=1) and fail unless "
             "the warm process reproduces the cold table")
    parser.add_argument(
        "--backend-smoke", action="store_true",
        help="run backend-matrix --quick twice and fail unless every "
             "registered backend appears and the runs are "
             "byte-identical")
    parser.add_argument(
        "--pool-gate", action="store_true",
        help="capture the tier-identity experiments under --jobs 2 "
             "with MIRAGE_WARM_POOL=1/0 and fail on any byte "
             "difference")
    args = parser.parse_args(argv)

    src = Path(args.src).resolve()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.simcache_gate:
        gate = [e for e in args.experiments if e in SIMCACHE_EXPERIMENTS]
        env_gate(src, out, gate or list(SIMCACHE_EXPERIMENTS),
                 "MIRAGE_SIM_CACHE", "sim-cache")
        return 0
    if args.vector_gate:
        gate = [e for e in args.experiments if e in VECTOR_EXPERIMENTS]
        env_gate(src, out, gate or list(VECTOR_EXPERIMENTS),
                 "MIRAGE_VECTOR", "vector")
        return 0
    if args.disk_smoke:
        gate = [e for e in args.experiments if e in SIMCACHE_EXPERIMENTS]
        disk_smoke(src, out, gate or list(SIMCACHE_EXPERIMENTS))
        return 0
    if args.backend_smoke:
        backend_smoke(src, out)
        return 0
    if args.pool_gate:
        gate = [e for e in args.experiments if e in EXPERIMENTS]
        pool_gate(src, out, gate or list(EXPERIMENTS))
        return 0
    for experiment in args.experiments:
        text = capture(experiment, src)
        path = out / f"{experiment}.txt"
        path.write_text(text)
        print(f"[capture] {experiment}: {len(text.splitlines())} lines "
              f"-> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
