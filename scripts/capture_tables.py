#!/usr/bin/env python3
"""Capture the tier-identity tables for byte-exact comparison.

Runs the experiments whose output the engine/backend refactors must
never change — ``table1``, ``fig7``, and ``tier-validation`` — in
``--quick --no-cache`` mode, strips the wall-clock-dependent runner
chatter (``[runner] ...`` stats and ``--- <name> done in X.Xs ---``
footers), and writes one ``<experiment>.txt`` per experiment.

CI runs this script twice (PR tree vs base tree) and fails the
tier-identity gate on any byte difference::

    python scripts/capture_tables.py --src src --out /tmp/pr
    python scripts/capture_tables.py --src base-tree/src --out /tmp/base
    diff -ru /tmp/base /tmp/pr
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

#: The experiments whose printed tables must stay bit-identical.
EXPERIMENTS = ("table1", "fig7", "tier-validation")

#: The experiments exercising the detailed tier, i.e. the ones whose
#: output the ``--simcache-gate`` mode compares with slice memoization
#: on vs off.
SIMCACHE_EXPERIMENTS = ("tier-validation",)


def is_volatile(line: str) -> bool:
    """True for timing lines that legitimately vary run to run."""
    if line.startswith("[runner] "):
        return True
    return line.startswith("--- ") and " done in " in line


def capture(experiment: str, src: Path,
            extra_env: dict[str, str] | None = None) -> str:
    """One experiment's table, with volatile timing lines stripped."""
    env = dict(os.environ, PYTHONPATH=str(src))
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", experiment,
         "--quick", "--no-cache"],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"capture_tables: {experiment} exited {proc.returncode}")
    lines = [line for line in proc.stdout.splitlines()
             if not is_volatile(line)]
    return "\n".join(lines) + "\n"


def simcache_gate(src: Path, out: Path,
                  experiments: list[str]) -> None:
    """Capture each detailed-tier experiment with slice memoization on
    and off and fail on any byte difference.

    The toggle goes through the ``MIRAGE_SIM_CACHE`` environment
    variable rather than CLI flags so the same invocation works
    against older src trees that predate ``--no-sim-cache``.
    """
    for experiment in experiments:
        on = capture(experiment, src, {"MIRAGE_SIM_CACHE": "1"})
        off = capture(experiment, src, {"MIRAGE_SIM_CACHE": "0"})
        (out / f"{experiment}.sim-cache-on.txt").write_text(on)
        (out / f"{experiment}.sim-cache-off.txt").write_text(off)
        if on != off:
            raise SystemExit(
                f"capture_tables: {experiment} differs between "
                f"MIRAGE_SIM_CACHE=1 and =0 — slice memoization "
                f"changed simulation output (see {out})")
        print(f"[simcache-gate] {experiment}: sim-cache on/off "
              f"byte-identical ({len(on.splitlines())} lines)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: capture every experiment into ``--out``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--src", default="src",
        help="the src/ tree to put on PYTHONPATH (default: src)")
    parser.add_argument(
        "--out", required=True,
        help="directory to write <experiment>.txt files into")
    parser.add_argument(
        "--experiments", nargs="*", default=list(EXPERIMENTS),
        help=f"experiments to capture (default: {' '.join(EXPERIMENTS)})")
    parser.add_argument(
        "--simcache-gate", action="store_true",
        help="capture the detailed tier twice (MIRAGE_SIM_CACHE=1/0) "
             "and fail on any byte difference instead of the normal "
             "capture")
    args = parser.parse_args(argv)

    src = Path(args.src).resolve()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.simcache_gate:
        gate = [e for e in args.experiments if e in SIMCACHE_EXPERIMENTS]
        simcache_gate(src, out, gate or list(SIMCACHE_EXPERIMENTS))
        return 0
    for experiment in args.experiments:
        text = capture(experiment, src)
        path = out / f"{experiment}.txt"
        path.write_text(text)
        print(f"[capture] {experiment}: {len(text.splitlines())} lines "
              f"-> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
