"""Calibration sweep: detailed-sim behaviour vs. paper-derived targets.

Run:  python scripts/calibrate.py [benchmark ...]

Prints, per benchmark: OoO IPC, InO:OoO ratio, oracle memoized
fraction, OinO relative performance — next to the profile targets.
Used while tuning the structural generator parameters.
"""

import sys
import time

from repro.cores import InOrderCore, OinOCore, OutOfOrderCore
from repro.memory import MemoryHierarchy
from repro.schedule import ScheduleCache, ScheduleRecorder
from repro.workloads import ALL_BENCHMARKS, get_profile, make_benchmark

N = 50_000


def evaluate(name: str) -> dict:
    prof = get_profile(name)
    bench = make_benchmark(name, seed=1)
    sc = ScheduleCache(None)  # oracle: infinite SC
    rec = ScheduleRecorder(sc)
    r_ooo = OutOfOrderCore(
        MemoryHierarchy().core_view(0), recorder=rec
    ).run(bench.stream(), N)
    r_ino = InOrderCore(MemoryHierarchy().core_view(1)).run(bench.stream(), N)
    r_oino = OinOCore(MemoryHierarchy().core_view(2), sc).run(bench.stream(), N)
    return {
        "name": name,
        "cat": prof.category,
        "ipc_ooo": r_ooo.ipc,
        "t_ipc": prof.target_ipc_ooo,
        "ratio": r_ino.ipc / r_ooo.ipc,
        "t_ratio": prof.target_ipc_ratio,
        "memo": r_oino.stats.memoized_fraction,
        "t_memo": prof.target_memoizable,
        "oino_rel": r_oino.ipc / r_ooo.ipc,
        "aborts": r_oino.stats.trace_aborts,
    }


def main() -> None:
    names = sys.argv[1:] or list(ALL_BENCHMARKS)
    print(f"{'bench':<12} {'cat':<4} {'ipcO(t)':>14} {'ratio(t)':>14} "
          f"{'memo(t)':>14} {'oinoRel':>8} {'aborts':>6}")
    t0 = time.time()
    miscls = 0
    for name in names:
        r = evaluate(name)
        ok = (r["ratio"] < 0.6) == (r["cat"] == "HPD")
        miscls += not ok
        print(f"{r['name']:<12} {r['cat']:<4} "
              f"{r['ipc_ooo']:>6.2f}({r['t_ipc']:>4.2f}) "
              f"{r['ratio']:>6.2f}({r['t_ratio']:>4.2f}) "
              f"{r['memo']:>6.2f}({r['t_memo']:>4.2f}) "
              f"{r['oino_rel']:>8.2f} {r['aborts']:>6} "
              f"{'' if ok else '  <-- misclassified'}")
    print(f"misclassified: {miscls}/{len(names)}  "
          f"({time.time()-t0:.0f}s)")


if __name__ == "__main__":
    main()
